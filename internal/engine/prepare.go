package engine

import (
	"container/list"
	"context"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// defaultPlanCacheSize bounds the DB plan cache when DB.PlanCacheSize is 0.
const defaultPlanCacheSize = 256

// planEntry is one cached plan: the parsed statement plus its bind-slot
// count, keyed by normalized SQL text.
type planEntry struct {
	key     string
	st      sqlparse.Statement
	nparams int
	elem    *list.Element
}

// PlanCacheStats is a snapshot of the plan cache's activity.
type PlanCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// normalizeSQL is the plan-cache key rule: surrounding whitespace and
// trailing statement separators do not make a new plan.
func normalizeSQL(sql string) string {
	return strings.TrimRight(strings.TrimSpace(sql), "; \t\n\r")
}

// cachedParse parses one statement through the DB plan cache: identical
// normalized SQL skips the lexer and parser entirely and reuses the
// previous AST (execution never mutates it). Must be called with db.mu
// held. A negative PlanCacheSize disables caching.
func (db *DB) cachedParse(sql string) (sqlparse.Statement, int, error) {
	if db.PlanCacheSize < 0 {
		st, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, 0, err
		}
		return st, sqlparse.NumParams(st), nil
	}
	key := normalizeSQL(sql)
	if e, ok := db.plans[key]; ok {
		db.planLRU.MoveToFront(e.elem)
		db.planHits.Add(1)
		if tr := db.activeTrace; tr != nil {
			tr.CacheHit = true
		}
		return e.st, e.nparams, nil
	}
	db.planMisses.Add(1)
	pt := db.activeTrace.StartStage(obs.StageParse)
	st, err := sqlparse.Parse(sql)
	pt.Done()
	if err != nil {
		return nil, 0, err
	}
	e := &planEntry{key: key, st: st, nparams: sqlparse.NumParams(st)}
	if db.plans == nil {
		db.plans = map[string]*planEntry{}
		db.planLRU = list.New()
	}
	cap := db.PlanCacheSize
	if cap == 0 {
		cap = defaultPlanCacheSize
	}
	for len(db.plans) >= cap {
		oldest := db.planLRU.Back()
		if oldest == nil {
			break
		}
		victim := db.planLRU.Remove(oldest).(*planEntry)
		delete(db.plans, victim.key)
		db.planEvictions.Add(1)
	}
	e.elem = db.planLRU.PushFront(e)
	db.plans[key] = e
	db.planEntries.Store(int64(len(db.plans)))
	return st, e.nparams, nil
}

// invalidatePlans drops every cached plan. Called (with db.mu held) on any
// catalog change — CREATE/DROP TABLE, CREATE/DROP FUNCTION, Go-UDF
// (re-)registration, bulk table registration — so a cached plan can never
// outlive the schema it was planned against.
func (db *DB) invalidatePlans() {
	db.plans = nil
	db.planLRU = nil
	db.planEntries.Store(0)
}

// PlanCacheStatsSnapshot reports plan-cache hits, misses, evictions and
// live entries. The counters are atomic, so this never blocks behind a
// running statement.
func (db *DB) PlanCacheStatsSnapshot() PlanCacheStats {
	return PlanCacheStats{
		Hits:      db.planHits.Load(),
		Misses:    db.planMisses.Load(),
		Evictions: db.planEvictions.Load(),
		Entries:   int(db.planEntries.Load()),
	}
}

// Stmt is a prepared statement: SQL parsed and planned once, executed many
// times with bind arguments — the amortization the devUDF workflow's
// repeated import/run/debug queries want. Placeholder slots are typed at
// the first bind and re-checked on every execution (INTEGER widens into a
// DOUBLE slot; anything else mismatched is rejected). Execution serializes
// on the database lock, and the bind-type state has its own lock, so a
// Stmt is safe for concurrent use.
type Stmt struct {
	conn    *Conn
	sql     string
	st      sqlparse.Statement
	nparams int

	mu    sync.Mutex
	types []storage.Type
	typed []bool
}

// Prepare compiles sql into a reusable statement. The parse goes through
// (and seeds) the DB plan cache, so preparing the same text twice shares
// one AST.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	c.DB.mu.Lock()
	st, nparams, err := c.DB.cachedParse(sql)
	c.DB.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Stmt{
		conn:    c,
		sql:     sql,
		st:      st,
		nparams: nparams,
		types:   make([]storage.Type, nparams),
		typed:   make([]bool, nparams),
	}, nil
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams reports how many bind arguments each execution needs.
func (s *Stmt) NumParams() int { return s.nparams }

// Query executes the statement with one set of bind arguments and returns
// its result.
func (s *Stmt) Query(args ...any) (*Result, error) { return s.execGuarded(Interrupt{}, nil, args) }

// Exec is Query for statements executed for their side effects; the
// returned Result carries the status tag.
func (s *Stmt) Exec(args ...any) (*Result, error) { return s.execGuarded(Interrupt{}, nil, args) }

// ExecContext is Exec honoring the context's cancellation and deadline
// mid-execution (see Conn.ExecContext) and reporting bind and execution
// spans into the trace carried on ctx (obs.WithTrace), if any.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	return s.execGuarded(InterruptFrom(ctx), obs.TraceFrom(ctx), args)
}

// QueryContext is Query honoring the context's cancellation/deadline and
// reporting spans into the trace carried on ctx.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	return s.execGuarded(InterruptFrom(ctx), obs.TraceFrom(ctx), args)
}

// ExecTraced is ExecContext without the context detour — see
// Conn.ExecTraced. tr may be nil.
func (s *Stmt) ExecTraced(tr *obs.Trace, args ...any) (*Result, error) {
	return s.execGuarded(Interrupt{}, tr, args)
}

// ExecInterruptible is the fully explicit entry point: an interrupt and
// an optional trace, no context allocation — the wire server's
// per-statement path. Either may be zero/nil.
func (s *Stmt) ExecInterruptible(intr Interrupt, tr *obs.Trace, args ...any) (*Result, error) {
	return s.execGuarded(intr, tr, args)
}

func (s *Stmt) execGuarded(intr Interrupt, tr *obs.Trace, args []any) (*Result, error) {
	if tr == nil && !intr.armed() {
		// Unguarded executions skip the trace/interrupt installs and their
		// deferred restores — this is the path every plain Exec/Query takes.
		cols, err := s.bindArgs(args)
		if err != nil {
			return nil, err
		}
		c := s.conn
		c.DB.mu.Lock()
		defer c.DB.mu.Unlock()
		c.binds = cols
		defer func() { c.binds = nil }()
		return c.execStmt(s.st)
	}
	var cols []*storage.Column
	var err error
	if tr != nil {
		bt := tr.StartStage(obs.StageBind)
		cols, err = s.bindArgs(args)
		bt.Done()
		// The statement was parsed once at Prepare; every execution is a
		// plan reuse regardless of what the text cache does.
		tr.CacheHit = true
	} else {
		cols, err = s.bindArgs(args)
	}
	if err != nil {
		return nil, err
	}
	c := s.conn
	var st *intrState
	if intr.armed() {
		st = &intrState{done: intr.Done, deadline: intr.Deadline, hasDeadline: !intr.Deadline.IsZero()}
	}
	c.DB.mu.Lock()
	defer c.DB.mu.Unlock()
	if err := st.err(); err != nil {
		c.DB.queriesCancelled.Add(1)
		return nil, err
	}
	if st != nil {
		prevI := c.DB.activeIntr
		c.DB.activeIntr = st
		defer func() { c.DB.activeIntr = prevI }()
	}
	if tr != nil {
		prev := c.DB.activeTrace
		c.DB.activeTrace = tr
		defer func() { c.DB.activeTrace = prev }()
		et := tr.StartStage(obs.StageExec)
		defer et.Done()
	}
	c.binds = cols
	defer func() { c.binds = nil }()
	res, err := c.execStmt(s.st)
	if err != nil && core.IsCancelled(err) {
		c.DB.queriesCancelled.Add(1)
	}
	return res, err
}

// bindArgs converts the Go arguments into length-1 columns and enforces
// the slot types recorded at the first bind.
func (s *Stmt) bindArgs(args []any) ([]*storage.Column, error) {
	if len(args) != s.nparams {
		return nil, core.Errorf(core.KindConstraint,
			"statement expects %d bind parameter(s), got %d", s.nparams, len(args))
	}
	cols := make([]*storage.Column, len(args))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, v := range args {
		col, err := storage.BindValue(v)
		if err != nil {
			return nil, core.Wrapf(core.KindType, err, "parameter %d: %v", i+1, err)
		}
		if v == nil {
			// NULL binds into any slot; take the slot's type once known so
			// downstream kernels see a consistently-typed column.
			if s.typed[i] {
				col = storage.NewColumn("", s.types[i])
				col.AppendNull()
			}
			cols[i] = col
			continue
		}
		switch {
		case !s.typed[i]:
			s.types[i], s.typed[i] = col.Typ, true
		case col.Typ == s.types[i]:
		case s.types[i] == storage.TFloat && col.Typ == storage.TInt:
			conv := storage.NewColumn("", storage.TFloat)
			conv.AppendFloat(float64(col.Ints[0]))
			col = conv
		default:
			return nil, core.Errorf(core.KindType,
				"parameter %d: cannot bind %s into a %s slot (typed at first bind)",
				i+1, col.Typ, s.types[i])
		}
		cols[i] = col
	}
	return cols, nil
}
