package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

func prepTestDB(t testing.TB) *Conn {
	t.Helper()
	db := NewDB()
	c := &Conn{DB: db, User: "monetdb", Password: "monetdb"}
	script := []string{
		`CREATE TABLE nums (i INTEGER, f DOUBLE, s STRING)`,
		`INSERT INTO nums VALUES (1, 0.5, 'a'), (2, 1.5, 'b'), (3, 2.5, 'c'), (4, 3.5, 'a'), (NULL, NULL, NULL)`,
		`CREATE FUNCTION plus_one(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
			out = []
			for v in x:
			    out.append(v + 1)
			return out
		}`,
	}
	for _, sql := range script {
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	return c
}

// fmtLit renders a bind value as a SQL literal, for the differential side.
func fmtLit(v any) string {
	switch v := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	default:
		return fmt.Sprint(v)
	}
}

// TestPrepareDifferential pins the tentpole acceptance: a query prepared
// once and executed with several bind sets returns results identical to
// the equivalent literal-substituted Query calls, through both the
// vectorized and the ScalarRef pipelines.
func TestPrepareDifferential(t *testing.T) {
	queries := []struct {
		param string // with placeholders
		subst string // with %s slots for literals
		binds [][]any
	}{
		{
			`SELECT i, f FROM nums WHERE i > ? AND f < ?`,
			`SELECT i, f FROM nums WHERE i > %s AND f < %s`,
			[][]any{{int64(1), 3.0}, {int64(2), 9.9}, {int64(0), 0.6}},
		},
		{
			`SELECT plus_one(i) AS p FROM nums WHERE i <> $1 ORDER BY p DESC`,
			`SELECT plus_one(i) AS p FROM nums WHERE i <> %s ORDER BY p DESC`,
			[][]any{{int64(2)}, {int64(3)}, {int64(100)}},
		},
		{
			`SELECT s, count(*) AS n FROM nums WHERE s <> ? GROUP BY s HAVING count(*) >= ? ORDER BY s`,
			`SELECT s, count(*) AS n FROM nums WHERE s <> %s GROUP BY s HAVING count(*) >= %s ORDER BY s`,
			[][]any{{"b", int64(1)}, {"zz", int64(2)}, {"a", int64(1)}},
		},
		{
			`SELECT ? + i AS a, ? AS b, abs(? - f) AS c FROM nums`,
			`SELECT %s + i AS a, %s AS b, abs(%s - f) AS c FROM nums`,
			[][]any{
				{int64(10), "tag", 1.5},
				{int64(-1), "other", 0.0},
				{int64(0), "x", 9.25},
			},
		},
	}
	for _, scalarRef := range []bool{false, true} {
		name := "vectorized"
		if scalarRef {
			name = "scalar-ref"
		}
		t.Run(name, func(t *testing.T) {
			c := prepTestDB(t)
			c.DB.ScalarRef = scalarRef
			for _, q := range queries {
				stmt, err := c.Prepare(q.param)
				if err != nil {
					t.Fatalf("prepare %s: %v", q.param, err)
				}
				for _, binds := range q.binds {
					got, err := stmt.Query(binds...)
					if err != nil {
						t.Fatalf("%s binds %v: %v", q.param, binds, err)
					}
					lits := make([]any, len(binds))
					for i, b := range binds {
						lits[i] = fmtLit(b)
					}
					sql := fmt.Sprintf(q.subst, lits...)
					want, err := c.Exec(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if got.Msg != want.Msg {
						t.Fatalf("%s binds %v: msg %q vs %q", q.param, binds, got.Msg, want.Msg)
					}
					assertTablesEqual(t, q.param, got.Table, want.Table)
				}
			}
		})
	}
}

func assertTablesEqual(t *testing.T, label string, got, want *storage.Table) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: table presence differs", label)
	}
	if got == nil {
		return
	}
	if len(got.Cols) != len(want.Cols) || got.NumRows() != want.NumRows() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label,
			got.NumRows(), len(got.Cols), want.NumRows(), len(want.Cols))
	}
	for ci := range got.Cols {
		g, w := got.Cols[ci], want.Cols[ci]
		if g.Name != w.Name || g.Typ != w.Typ {
			t.Fatalf("%s: column %d is %s %s vs %s %s", label, ci, g.Name, g.Typ, w.Name, w.Typ)
		}
		for r := 0; r < g.Len(); r++ {
			if g.IsNull(r) != w.IsNull(r) {
				t.Fatalf("%s: row %d col %s null mismatch", label, r, g.Name)
			}
			if !g.IsNull(r) && g.FormatValue(r) != w.FormatValue(r) {
				t.Fatalf("%s: row %d col %s: %s vs %s", label, r, g.Name, g.FormatValue(r), w.FormatValue(r))
			}
		}
	}
}

// TestPrepareInsertAndReuse pins parameterized INSERT plus slot typing:
// the first bind fixes each slot's type, later binds are re-checked
// (INTEGER widens into DOUBLE; DOUBLE into INTEGER is rejected).
func TestPrepareInsertAndReuse(t *testing.T) {
	c := prepTestDB(t)
	ins, err := c.Prepare(`INSERT INTO nums VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 3 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	if _, err := ins.Exec(int64(10), 10.5, "x"); err != nil {
		t.Fatal(err)
	}
	// INTEGER widens into the DOUBLE slot; NULL binds anywhere
	if _, err := ins.Exec(int64(11), int64(11), nil); err != nil {
		t.Fatal(err)
	}
	// re-check: a STRING into the INTEGER slot is rejected
	if _, err := ins.Exec("nope", 1.0, "y"); err == nil || !strings.Contains(err.Error(), "typed at first bind") {
		t.Fatalf("expected slot type error, got %v", err)
	}
	// wrong arity is rejected before execution
	if _, err := ins.Exec(int64(1)); err == nil || !strings.Contains(err.Error(), "expects 3") {
		t.Fatalf("expected arity error, got %v", err)
	}
	res, err := c.Exec(`SELECT count(*) AS n FROM nums WHERE i >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Table.Cols[0].Ints[0]; n != 2 {
		t.Fatalf("expected 2 inserted rows, got %d", n)
	}
}

// TestPreparedBlobBindCopies: a bound []byte must be copied at bind time —
// a caller reusing its buffer across executions (the chunked-insert loop)
// must not retroactively rewrite stored rows.
func TestPreparedBlobBindCopies(t *testing.T) {
	c := prepTestDB(t)
	if _, err := c.Exec(`CREATE TABLE blobs (b BLOB)`); err != nil {
		t.Fatal(err)
	}
	ins, err := c.Prepare(`INSERT INTO blobs VALUES (?)`)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("first")
	if _, err := ins.Exec(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // caller reuses its buffer
	if _, err := ins.Exec(buf); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`SELECT b FROM blobs`)
	if err != nil {
		t.Fatal(err)
	}
	col := res.Table.Cols[0]
	if string(col.Blobs[0]) != "first" || string(col.Blobs[1]) != "XXXXX" {
		t.Fatalf("blob bind aliased the caller's buffer: %q %q", col.Blobs[0], col.Blobs[1])
	}
}

// TestUnpreparedPlaceholderRejected: a parameterized statement cannot run
// through the plain Query path.
func TestUnpreparedPlaceholderRejected(t *testing.T) {
	c := prepTestDB(t)
	_, err := c.Exec(`SELECT i FROM nums WHERE i = ?`)
	if err == nil || !strings.Contains(err.Error(), "Prepare") {
		t.Fatalf("expected bind-parameter error, got %v", err)
	}
}

// TestPlanCacheHitsAndInvalidation pins the DB plan cache: identical text
// hits, DDL of every flavor (table, function, Go-UDF re-registration)
// flushes, and the LRU stays bounded.
func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	c := prepTestDB(t)
	db := c.DB
	base := db.PlanCacheStatsSnapshot()

	const q = `SELECT i FROM nums WHERE i > 1`
	for i := 0; i < 5; i++ {
		if _, err := c.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	// normalization: whitespace and trailing semicolons share the plan
	if _, err := c.Exec("  " + q + " ;\n"); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStatsSnapshot()
	if hits := st.Hits - base.Hits; hits != 5 {
		t.Fatalf("expected 5 cache hits, got %d", hits)
	}

	// DDL flushes the cache
	checks := []func() error{
		func() error { _, err := c.Exec(`CREATE TABLE flush1 (x INTEGER)`); return err },
		func() error { _, err := c.Exec(`DROP TABLE flush1`); return err },
		func() error {
			_, err := c.Exec(`CREATE OR REPLACE FUNCTION plus_one(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
				return x + 2
			}`)
			return err
		},
		func() error { _, err := c.Exec(`DROP FUNCTION plus_one`); return err },
		func() error { return db.RegisterGoUDF("cache_probe", func(x []int64) []int64 { return x }) },
		func() error {
			return db.RegisterTable(storage.NewTable("flush2", storage.Schema{{Name: "x", Type: storage.TInt}}))
		},
	}
	for i, ddl := range checks {
		if _, err := c.Exec(q); err != nil { // warm
			t.Fatal(err)
		}
		if err := ddl(); err != nil {
			t.Fatalf("ddl %d: %v", i, err)
		}
		before := db.PlanCacheStatsSnapshot()
		if before.Entries != 0 {
			t.Fatalf("ddl %d: cache not flushed (%d entries)", i, before.Entries)
		}
		if _, err := c.Exec(q); err != nil {
			t.Fatal(err)
		}
		after := db.PlanCacheStatsSnapshot()
		if after.Misses != before.Misses+1 {
			t.Fatalf("ddl %d: expected a re-plan after invalidation", i)
		}
	}
}

// TestPlanCacheBound pins the LRU bound: the cache never exceeds
// PlanCacheSize entries and evicts the least recently used text.
func TestPlanCacheBound(t *testing.T) {
	c := prepTestDB(t)
	c.DB.PlanCacheSize = 4
	for i := 0; i < 20; i++ {
		if _, err := c.Exec(fmt.Sprintf(`SELECT %d AS v`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.DB.PlanCacheStatsSnapshot(); st.Entries > 4 {
		t.Fatalf("cache grew past its bound: %d entries", st.Entries)
	}
	// the most recent text must still hit
	before := c.DB.PlanCacheStatsSnapshot()
	if _, err := c.Exec(`SELECT 19 AS v`); err != nil {
		t.Fatal(err)
	}
	if st := c.DB.PlanCacheStatsSnapshot(); st.Hits != before.Hits+1 {
		t.Fatal("most recent entry was evicted")
	}
	// disabled cache parses every time
	c.DB.PlanCacheSize = -1
	before = c.DB.PlanCacheStatsSnapshot()
	if _, err := c.Exec(`SELECT 19 AS v`); err != nil {
		t.Fatal(err)
	}
	if st := c.DB.PlanCacheStatsSnapshot(); st.Hits != before.Hits || st.Misses != before.Misses {
		t.Fatal("disabled cache still counting")
	}
}

// TestPreparedFusedFilter: a bound placeholder in a col-vs-const conjunct
// must still produce correct results through the fused compare-select
// path, including alongside literal conjuncts.
func TestPreparedFusedFilter(t *testing.T) {
	c := prepTestDB(t)
	stmt, err := c.Prepare(`SELECT i FROM nums WHERE i >= ? AND i <= 3 AND f < ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(int64(2), 99.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 2 {
		t.Fatalf("expected rows 2..3, got %d rows", res.Table.NumRows())
	}
	// same stmt, narrower bind
	res, err = stmt.Query(int64(3), 2.6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 || res.Table.Cols[0].Ints[0] != 3 {
		t.Fatalf("expected exactly row 3, got %v", res.Table.Cols[0].Ints)
	}
}
