package engine

import (
	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transfer"
	"repro/internal/udfrt/pyrt"
)

// extractFuncName is the reserved table function devUDF's query rewriting
// substitutes for a UDF call (paper §2.2): instead of executing the UDF,
// the server packages the UDF's would-be input data — optionally sampled,
// compressed and encrypted — and returns it to the client.
const extractFuncName = "sys_extract"

// extract result schema.
var extractSchema = storage.Schema{
	{Name: "udf", Type: storage.TStr},
	{Name: "payload", Type: storage.TBlob},
	{Name: "compressed", Type: storage.TBool},
	{Name: "encrypted", Type: storage.TBool},
	{Name: "total_rows", Type: storage.TInt},
	{Name: "sample_rows", Type: storage.TInt},
}

// evalExtract executes SELECT * FROM sys_extract('<udf>', '<opts>', args...).
func (c *Conn) evalExtract(call *sqlparse.FuncCall) (*storage.Table, error) {
	if len(call.Args) < 2 {
		return nil, core.Errorf(core.KindConstraint,
			"%s requires (udf_name, options, args...)", extractFuncName)
	}
	nameLit, ok := call.Args[0].(*sqlparse.StrLit)
	if !ok {
		return nil, core.Errorf(core.KindType, "%s: first argument must be a string literal", extractFuncName)
	}
	optLit, ok := call.Args[1].(*sqlparse.StrLit)
	if !ok {
		return nil, core.Errorf(core.KindType, "%s: second argument must be a string literal", extractFuncName)
	}
	opts, err := transfer.DecodeOptions(optLit.Value)
	if err != nil {
		return nil, err
	}
	def, err := c.DB.cat.Function(nameLit.Value)
	if err != nil {
		return nil, err
	}
	ctx := c.newCtx(nil, nil)
	argCols, isColumn, err := c.udfArgColumns(ctx, call.Args[2:])
	if err != nil {
		return nil, err
	}
	if len(argCols) != len(def.Params) {
		return nil, core.Errorf(core.KindConstraint,
			"%s expects %d argument(s), got %d", def.Name, len(def.Params), len(argCols))
	}

	totalRows := maxColLen(argCols)
	sampleRows := totalRows
	if opts.SampleSize > 0 && opts.SampleSize < totalRows {
		idx := transfer.SampleIndexes(totalRows, opts.SampleSize, opts.Seed)
		for i, col := range argCols {
			if col.Len() == totalRows {
				g := col.Gather(idx)
				g.Name = col.Name
				argCols[i] = g
			}
		}
		sampleRows = len(idx)
	}

	// Package the inputs as the pickled dict the generated local script
	// loads: {param_name: column values} plus self-describing metadata.
	params := script.NewDict()
	for i, p := range def.Params {
		params.SetStr(p.Name, pyrt.ColumnToValue(argCols[i], isColumn[i]))
	}
	envelope := script.NewDict()
	envelope.SetStr("udf", script.StrVal(def.Name))
	envelope.SetStr("params", params)
	envelope.SetStr("total_rows", script.IntVal(int64(totalRows)))
	envelope.SetStr("sample_rows", script.IntVal(int64(sampleRows)))
	payload, err := script.Marshal(envelope)
	if err != nil {
		return nil, err
	}
	packed, err := transfer.Pack(payload, c.Password, opts)
	if err != nil {
		return nil, err
	}

	t := storage.NewTable("extract", extractSchema)
	err = t.AppendRow([]any{
		def.Name, packed, opts.Compress, opts.Encrypt,
		int64(totalRows), int64(sampleRows),
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeExtractPayload is the client-side inverse: it unpacks a sys_extract
// payload (decrypt, decompress, unpickle) into the parameter dict and
// metadata. The devudf package calls this after fetching the rewritten
// query's result over the wire.
func DecodeExtractPayload(packed []byte, password string) (udf string, params *script.DictVal, totalRows, sampleRows int64, err error) {
	raw, err := transfer.Unpack(packed, password)
	if err != nil {
		return "", nil, 0, 0, err
	}
	v, err := script.Unmarshal(raw)
	if err != nil {
		return "", nil, 0, 0, err
	}
	env, ok := v.(*script.DictVal)
	if !ok {
		return "", nil, 0, 0, core.Errorf(core.KindProtocol, "extract payload is not a dict")
	}
	nameV, _ := env.GetStr("udf")
	paramsV, _ := env.GetStr("params")
	totalV, _ := env.GetStr("total_rows")
	sampleV, _ := env.GetStr("sample_rows")
	name, ok1 := nameV.(script.StrVal)
	pd, ok2 := paramsV.(*script.DictVal)
	tr, ok3 := totalV.(script.IntVal)
	sr, ok4 := sampleV.(script.IntVal)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return "", nil, 0, 0, core.Errorf(core.KindProtocol, "extract payload envelope is malformed")
	}
	return string(name), pd, int64(tr), int64(sr), nil
}
