package engine

import (
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// evalCtx is the row context an expression evaluates against: a source
// table (nil for FROM-less selects) and its row count.
type evalCtx struct {
	conn *Conn
	src  *storage.Table
	n    int
}

// evalExpr evaluates an expression vectorized over the context, returning a
// column of length ctx.n or of length 1 (a constant, broadcast by callers).
func (c *Conn) evalExpr(ctx *evalCtx, e sqlparse.Expr) (*storage.Column, error) {
	switch e := e.(type) {
	case *sqlparse.IntLit:
		col := storage.NewColumn("", storage.TInt)
		col.AppendInt(e.Value)
		return col, nil
	case *sqlparse.FloatLit:
		col := storage.NewColumn("", storage.TFloat)
		col.AppendFloat(e.Value)
		return col, nil
	case *sqlparse.StrLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendStr(e.Value)
		return col, nil
	case *sqlparse.BoolLit:
		col := storage.NewColumn("", storage.TBool)
		col.AppendBool(e.Value)
		return col, nil
	case *sqlparse.NullLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendNull()
		return col, nil
	case *sqlparse.ColRef:
		if ctx.src == nil {
			return nil, core.Errorf(core.KindName, "no FROM clause to resolve column %q", e.Name)
		}
		col, err := ctx.src.Column(e.Name)
		if err != nil {
			return nil, err
		}
		return col, nil
	case *sqlparse.UnaryExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		return evalUnary(e.Op, x)
	case *sqlparse.BinaryExpr:
		l, err := c.evalExpr(ctx, e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.evalExpr(ctx, e.R)
		if err != nil {
			return nil, err
		}
		return evalBinary(e.Op, l, r)
	case *sqlparse.IsNullExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		out := storage.NewColumn("", storage.TBool)
		for i := 0; i < x.Len(); i++ {
			v := x.IsNull(i)
			if e.Neg {
				v = !v
			}
			out.AppendBool(v)
		}
		return out, nil
	case *sqlparse.CastExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		return castColumn(x, e.To)
	case *sqlparse.FuncCall:
		return c.evalCall(ctx, e)
	case *sqlparse.Subquery:
		// scalar subquery: single column, single row
		t, err := c.evalSelect(e.Sel)
		if err != nil {
			return nil, err
		}
		if len(t.Cols) != 1 || t.NumRows() != 1 {
			return nil, core.Errorf(core.KindConstraint,
				"scalar subquery must return one row and one column (got %dx%d)",
				t.NumRows(), len(t.Cols))
		}
		return t.Cols[0], nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported expression %T", e)
	}
}

// evalCall dispatches a function expression: scalar builtin, aggregate
// (over the whole context, for non-grouped use), or Python UDF.
func (c *Conn) evalCall(ctx *evalCtx, call *sqlparse.FuncCall) (*storage.Column, error) {
	name := strings.ToLower(call.Name)
	if isAggregateName(name) {
		v, err := c.evalAggregate(ctx, call)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	if fn, ok := scalarBuiltins[name]; ok {
		args, err := c.evalArgs(ctx, call.Args)
		if err != nil {
			return nil, err
		}
		return fn(args)
	}
	if name == extractFuncName {
		return nil, core.Errorf(core.KindConstraint,
			"%s is table-valued; use it in FROM", extractFuncName)
	}
	if c.DB.cat.HasFunction(call.Name) {
		argCols, isColumn, err := c.udfArgColumns(ctx, call.Args)
		if err != nil {
			return nil, err
		}
		out, err := c.callScalarUDF(call.Name, argCols, isColumn)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, core.Errorf(core.KindName, "no such function: %s", call.Name)
}

func (c *Conn) evalArgs(ctx *evalCtx, args []sqlparse.Expr) ([]*storage.Column, error) {
	out := make([]*storage.Column, len(args))
	for i, a := range args {
		col, err := c.evalExpr(ctx, a)
		if err != nil {
			return nil, err
		}
		out[i] = col
	}
	return out, nil
}

// udfArgColumns evaluates UDF arguments, expanding table-valued subqueries
// into one column per output column (the paper's
// train_rnforest((SELECT data, labels FROM trainingset), n) shape). The
// parallel isColumn slice records MonetDB/Python's calling convention per
// argument: column references and subquery outputs arrive in the UDF as
// arrays (lists), constant expressions as scalars — regardless of how many
// rows the column happens to hold.
func (c *Conn) udfArgColumns(ctx *evalCtx, args []sqlparse.Expr) ([]*storage.Column, []bool, error) {
	var out []*storage.Column
	var isColumn []bool
	for _, a := range args {
		if sub, ok := a.(*sqlparse.Subquery); ok {
			t, err := c.evalSelect(sub.Sel)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, t.Cols...)
			for range t.Cols {
				isColumn = append(isColumn, true)
			}
			continue
		}
		col, err := c.evalExpr(ctx, a)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, col)
		isColumn = append(isColumn, exprIsColumnar(a))
	}
	return out, isColumn, nil
}

// exprIsColumnar reports whether an argument expression derives from table
// data (and therefore arrives in the UDF as a list). Aggregates reduce
// columns to scalars, so they do not count as columnar.
func exprIsColumnar(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		return true
	case *sqlparse.Subquery:
		return true
	case *sqlparse.BinaryExpr:
		return exprIsColumnar(e.L) || exprIsColumnar(e.R)
	case *sqlparse.UnaryExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.CastExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.IsNullExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.FuncCall:
		if isAggregateName(e.Name) {
			return false
		}
		for _, a := range e.Args {
			if exprIsColumnar(a) {
				return true
			}
		}
	}
	return false
}

// ---- vectorized operators ----

// aligned iterates two columns with length-1 broadcast.
func aligned(l, r *storage.Column) (int, func(i int) (int, int), error) {
	ln, rn := l.Len(), r.Len()
	switch {
	case ln == rn:
		return ln, func(i int) (int, int) { return i, i }, nil
	case ln == 1:
		return rn, func(i int) (int, int) { return 0, i }, nil
	case rn == 1:
		return ln, func(i int) (int, int) { return i, 0 }, nil
	default:
		return 0, nil, core.Errorf(core.KindConstraint,
			"column length mismatch: %d vs %d", ln, rn)
	}
}

func numericAt(c *storage.Column, i int) (float64, bool) {
	switch c.Typ {
	case storage.TInt:
		return float64(c.Ints[i]), true
	case storage.TFloat:
		return c.Flts[i], true
	case storage.TBool:
		if c.Bools[i] {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

func evalUnary(op string, x *storage.Column) (*storage.Column, error) {
	switch op {
	case "-":
		out := storage.NewColumn("", x.Typ)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			switch x.Typ {
			case storage.TInt:
				out.AppendInt(-x.Ints[i])
			case storage.TFloat:
				out.AppendFloat(-x.Flts[i])
			default:
				return nil, core.Errorf(core.KindType, "cannot negate %s", x.Typ)
			}
		}
		return out, nil
	case "NOT":
		out := storage.NewColumn("", storage.TBool)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendBool(!truthyAt(x, i))
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported unary operator %q", op)
	}
}

func truthyAt(c *storage.Column, i int) bool {
	if c.IsNull(i) {
		return false
	}
	switch c.Typ {
	case storage.TBool:
		return c.Bools[i]
	case storage.TInt:
		return c.Ints[i] != 0
	case storage.TFloat:
		return c.Flts[i] != 0
	case storage.TStr:
		return c.Strs[i] != ""
	default:
		return false
	}
}

func evalBinary(op string, l, r *storage.Column) (*storage.Column, error) {
	n, at, err := aligned(l, r)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+", "-", "*", "/", "%":
		return evalArith(op, l, r, n, at)
	case "=", "<>", "<", "<=", ">", ">=":
		return evalCompare(op, l, r, n, at)
	case "AND", "OR":
		out := storage.NewColumn("", storage.TBool)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			lv, rv := truthyAt(l, li), truthyAt(r, ri)
			if op == "AND" {
				out.AppendBool(lv && rv)
			} else {
				out.AppendBool(lv || rv)
			}
		}
		return out, nil
	case "||":
		out := storage.NewColumn("", storage.TStr)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			if l.IsNull(li) || r.IsNull(ri) {
				out.AppendNull()
				continue
			}
			out.AppendStr(l.FormatValue(li) + r.FormatValue(ri))
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported operator %q", op)
	}
}

func evalArith(op string, l, r *storage.Column, n int, at func(int) (int, int)) (*storage.Column, error) {
	bothInt := l.Typ == storage.TInt && r.Typ == storage.TInt
	if bothInt {
		out := storage.NewColumn("", storage.TInt)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			if l.IsNull(li) || r.IsNull(ri) {
				out.AppendNull()
				continue
			}
			a, b := l.Ints[li], r.Ints[ri]
			switch op {
			case "+":
				out.AppendInt(a + b)
			case "-":
				out.AppendInt(a - b)
			case "*":
				out.AppendInt(a * b)
			case "/":
				if b == 0 {
					return nil, core.Errorf(core.KindRuntime, "division by zero")
				}
				out.AppendInt(a / b)
			case "%":
				if b == 0 {
					return nil, core.Errorf(core.KindRuntime, "division by zero")
				}
				out.AppendInt(a % b)
			}
		}
		return out, nil
	}
	out := storage.NewColumn("", storage.TFloat)
	for i := 0; i < n; i++ {
		li, ri := at(i)
		if l.IsNull(li) || r.IsNull(ri) {
			out.AppendNull()
			continue
		}
		a, aok := numericAt(l, li)
		b, bok := numericAt(r, ri)
		if !aok || !bok {
			return nil, core.Errorf(core.KindType,
				"cannot apply %q to %s and %s", op, l.Typ, r.Typ)
		}
		switch op {
		case "+":
			out.AppendFloat(a + b)
		case "-":
			out.AppendFloat(a - b)
		case "*":
			out.AppendFloat(a * b)
		case "/":
			if b == 0 {
				return nil, core.Errorf(core.KindRuntime, "division by zero")
			}
			out.AppendFloat(a / b)
		case "%":
			if b == 0 {
				return nil, core.Errorf(core.KindRuntime, "division by zero")
			}
			out.AppendFloat(math.Mod(a, b))
		}
	}
	return out, nil
}

func evalCompare(op string, l, r *storage.Column, n int, at func(int) (int, int)) (*storage.Column, error) {
	out := storage.NewColumn("", storage.TBool)
	for i := 0; i < n; i++ {
		li, ri := at(i)
		if l.IsNull(li) || r.IsNull(ri) {
			out.AppendNull() // SQL three-valued: comparisons with NULL are NULL
			continue
		}
		cmp, err := compareAt(l, li, r, ri)
		if err != nil {
			return nil, err
		}
		var v bool
		switch op {
		case "=":
			v = cmp == 0
		case "<>":
			v = cmp != 0
		case "<":
			v = cmp < 0
		case "<=":
			v = cmp <= 0
		case ">":
			v = cmp > 0
		case ">=":
			v = cmp >= 0
		}
		out.AppendBool(v)
	}
	return out, nil
}

func compareAt(l *storage.Column, li int, r *storage.Column, ri int) (int, error) {
	a, aok := numericAt(l, li)
	b, bok := numericAt(r, ri)
	if aok && bok {
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if l.Typ == storage.TStr && r.Typ == storage.TStr {
		return strings.Compare(l.Strs[li], r.Strs[ri]), nil
	}
	return 0, core.Errorf(core.KindType, "cannot compare %s with %s", l.Typ, r.Typ)
}

func castColumn(x *storage.Column, to storage.Type) (*storage.Column, error) {
	out := storage.NewColumn("", to)
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			out.AppendNull()
			continue
		}
		if err := out.AppendValue(x.Value(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- scalar builtins ----

type scalarFn func(args []*storage.Column) (*storage.Column, error)

var scalarBuiltins = map[string]scalarFn{
	"abs":    fnAbs,
	"length": fnLength,
	"upper":  fnStrMap(strings.ToUpper),
	"lower":  fnStrMap(strings.ToLower),
	"sqrt":   fnFloatMap("sqrt", math.Sqrt),
	"floor":  fnFloatMap("floor", math.Floor),
	"ceil":   fnFloatMap("ceil", math.Ceil),
	"round":  fnRound,
}

func isBuiltinName(name string) bool {
	n := strings.ToLower(name)
	if _, ok := scalarBuiltins[n]; ok {
		return true
	}
	return isAggregateName(n) || n == extractFuncName
}

func arity(name string, args []*storage.Column, want int) error {
	if len(args) != want {
		return core.Errorf(core.KindType, "%s expects %d argument(s), got %d", name, want, len(args))
	}
	return nil
}

func fnAbs(args []*storage.Column) (*storage.Column, error) {
	if err := arity("ABS", args, 1); err != nil {
		return nil, err
	}
	x := args[0]
	out := storage.NewColumn("", x.Typ)
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			out.AppendNull()
			continue
		}
		switch x.Typ {
		case storage.TInt:
			v := x.Ints[i]
			if v < 0 {
				v = -v
			}
			out.AppendInt(v)
		case storage.TFloat:
			out.AppendFloat(math.Abs(x.Flts[i]))
		default:
			return nil, core.Errorf(core.KindType, "ABS needs a numeric argument")
		}
	}
	return out, nil
}

func fnLength(args []*storage.Column) (*storage.Column, error) {
	if err := arity("LENGTH", args, 1); err != nil {
		return nil, err
	}
	x := args[0]
	out := storage.NewColumn("", storage.TInt)
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			out.AppendNull()
			continue
		}
		switch x.Typ {
		case storage.TStr:
			out.AppendInt(int64(len(x.Strs[i])))
		case storage.TBlob:
			out.AppendInt(int64(len(x.Blobs[i])))
		default:
			return nil, core.Errorf(core.KindType, "LENGTH needs a string or blob argument")
		}
	}
	return out, nil
}

func fnStrMap(fn func(string) string) scalarFn {
	return func(args []*storage.Column) (*storage.Column, error) {
		if err := arity("string function", args, 1); err != nil {
			return nil, err
		}
		x := args[0]
		if x.Typ != storage.TStr {
			return nil, core.Errorf(core.KindType, "expected a string argument")
		}
		out := storage.NewColumn("", storage.TStr)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendStr(fn(x.Strs[i]))
		}
		return out, nil
	}
}

func fnFloatMap(name string, fn func(float64) float64) scalarFn {
	return func(args []*storage.Column) (*storage.Column, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		x := args[0]
		out := storage.NewColumn("", storage.TFloat)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			v, ok := numericAt(x, i)
			if !ok {
				return nil, core.Errorf(core.KindType, "%s needs a numeric argument", name)
			}
			out.AppendFloat(fn(v))
		}
		return out, nil
	}
}

func fnRound(args []*storage.Column) (*storage.Column, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, core.Errorf(core.KindType, "ROUND expects 1 or 2 arguments")
	}
	digits := int64(0)
	if len(args) == 2 {
		if args[1].Typ != storage.TInt || args[1].Len() != 1 {
			return nil, core.Errorf(core.KindType, "ROUND digits must be an integer constant")
		}
		digits = args[1].Ints[0]
	}
	scale := math.Pow(10, float64(digits))
	x := args[0]
	out := storage.NewColumn("", storage.TFloat)
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			out.AppendNull()
			continue
		}
		v, ok := numericAt(x, i)
		if !ok {
			return nil, core.Errorf(core.KindType, "ROUND needs a numeric argument")
		}
		out.AppendFloat(math.Round(v*scale) / scale)
	}
	return out, nil
}
