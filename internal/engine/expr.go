package engine

import (
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/vec"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// evalCtx is the row context an expression evaluates against: a source
// table (nil for FROM-less selects) and an optional selection vector
// over its rows (the WHERE filter, consumed lazily — referenced columns
// are materialized once, on first use).
type evalCtx struct {
	conn *Conn
	src  *storage.Table
	sel  []int32 // non-nil: the logical rows are src's rows at sel
	// gathered memoizes per-column filtered views so an expression
	// referencing a column twice materializes it once.
	gathered map[*storage.Column]*storage.Column
}

// newCtx builds an evaluation context over a table view.
func (c *Conn) newCtx(src *storage.Table, sel []int32) *evalCtx {
	return &evalCtx{conn: c, src: src, sel: sel}
}

// pol is the morsel-execution policy for kernels running under this
// context. When an interrupt is armed on the statement, morsel workers
// poll it at every morsel boundary; otherwise Stop stays nil and the
// kernels pay one nil-check per morsel.
func (c *Conn) pol() vec.Pol {
	p := vec.Pol{Workers: c.DB.Workers, MorselSize: c.DB.MorselSize}
	if st := c.DB.activeIntr; st != nil {
		p.Stop = st.stopped
	}
	return p
}

// view returns the column restricted to the context's selection,
// memoized per base column.
func (ctx *evalCtx) view(col *storage.Column) *storage.Column {
	if ctx.sel == nil {
		return col
	}
	if g, ok := ctx.gathered[col]; ok {
		return g
	}
	g := col.GatherSel(ctx.sel)
	if ctx.gathered == nil {
		ctx.gathered = map[*storage.Column]*storage.Column{}
	}
	ctx.gathered[col] = g
	return g
}

// column resolves a column reference against the context's logical view.
func (ctx *evalCtx) column(name string) (*storage.Column, error) {
	col, err := ctx.src.Column(name)
	if err != nil {
		return nil, err
	}
	return ctx.view(col), nil
}

// evalExpr evaluates an expression vectorized over the context, returning
// a column of the context's logical row count or of length 1 (a constant,
// broadcast by callers).
func (c *Conn) evalExpr(ctx *evalCtx, e sqlparse.Expr) (*storage.Column, error) {
	switch e := e.(type) {
	case *sqlparse.IntLit:
		col := storage.NewColumn("", storage.TInt)
		col.AppendInt(e.Value)
		return col, nil
	case *sqlparse.FloatLit:
		col := storage.NewColumn("", storage.TFloat)
		col.AppendFloat(e.Value)
		return col, nil
	case *sqlparse.StrLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendStr(e.Value)
		return col, nil
	case *sqlparse.BoolLit:
		col := storage.NewColumn("", storage.TBool)
		col.AppendBool(e.Value)
		return col, nil
	case *sqlparse.NullLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendNull()
		return col, nil
	case *sqlparse.Placeholder:
		col, err := c.bindColumn(e)
		if err != nil {
			return nil, err
		}
		// clone so a bind referenced twice in one projection never shares a
		// column object (result assembly renames columns in place)
		return col.Clone(), nil
	case *sqlparse.ColRef:
		if ctx.src == nil {
			return nil, core.Errorf(core.KindName, "no FROM clause to resolve column %q", e.Name)
		}
		return ctx.column(e.Name)
	case *sqlparse.UnaryExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		return c.evalUnary(e.Op, x)
	case *sqlparse.BinaryExpr:
		l, err := c.evalExpr(ctx, e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.evalExpr(ctx, e.R)
		if err != nil {
			return nil, err
		}
		return c.evalBinary(e.Op, l, r)
	case *sqlparse.IsNullExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		if c.DB.ScalarRef {
			out := storage.NewColumn("", storage.TBool)
			for i := 0; i < x.Len(); i++ {
				v := x.IsNull(i)
				if e.Neg {
					v = !v
				}
				out.AppendBool(v)
			}
			return out, nil
		}
		return vec.IsNull(c.pol(), x, e.Neg), nil
	case *sqlparse.CastExpr:
		x, err := c.evalExpr(ctx, e.X)
		if err != nil {
			return nil, err
		}
		return castColumn(x, e.To)
	case *sqlparse.FuncCall:
		return c.evalCall(ctx, e)
	case *sqlparse.Subquery:
		// scalar subquery: single column, single row
		t, err := c.evalSelect(e.Sel)
		if err != nil {
			return nil, err
		}
		if len(t.Cols) != 1 || t.NumRows() != 1 {
			return nil, core.Errorf(core.KindConstraint,
				"scalar subquery must return one row and one column (got %dx%d)",
				t.NumRows(), len(t.Cols))
		}
		return t.Cols[0], nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported expression %T", e)
	}
}

// bindColumn resolves a placeholder to its bound length-1 column. Binds
// are installed by Stmt.exec for the duration of one execution; reaching
// an unbound slot means the statement ran outside the prepared path.
func (c *Conn) bindColumn(e *sqlparse.Placeholder) (*storage.Column, error) {
	if e.Index < 0 || e.Index >= len(c.binds) || c.binds[e.Index] == nil {
		return nil, core.Errorf(core.KindConstraint,
			"no value bound for parameter %d; use Prepare and pass arguments", e.Index+1)
	}
	return c.binds[e.Index], nil
}

// evalUnary dispatches a unary operator to the vectorized kernels (or
// the scalar reference under DB.ScalarRef).
func (c *Conn) evalUnary(op string, x *storage.Column) (*storage.Column, error) {
	if c.DB.ScalarRef {
		return scalarEvalUnary(op, x)
	}
	switch op {
	case "-":
		return vec.Neg(c.pol(), x)
	case "NOT":
		return vec.Not(c.pol(), x), nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported unary operator %q", op)
	}
}

// evalBinary dispatches a binary operator: op and operand types resolve
// to one typed kernel outside the loop.
func (c *Conn) evalBinary(op string, l, r *storage.Column) (*storage.Column, error) {
	if c.DB.ScalarRef {
		return scalarEvalBinary(op, l, r)
	}
	n, err := vec.Align(l, r)
	if err != nil {
		return nil, err
	}
	p := c.pol()
	switch op {
	case "+":
		return vec.Arith(p, vec.OpAdd, l, r, n)
	case "-":
		return vec.Arith(p, vec.OpSub, l, r, n)
	case "*":
		return vec.Arith(p, vec.OpMul, l, r, n)
	case "/":
		return vec.Arith(p, vec.OpDiv, l, r, n)
	case "%":
		return vec.Arith(p, vec.OpMod, l, r, n)
	case "=", "<>", "<", "<=", ">", ">=":
		return vec.Compare(p, cmpOpOf(op), l, r, n)
	case "AND":
		return vec.Logic(p, true, l, r, n), nil
	case "OR":
		return vec.Logic(p, false, l, r, n), nil
	case "||":
		// string concat is not vectorized; share the reference loop
		return scalarEvalBinary(op, l, r)
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported operator %q", op)
	}
}

func cmpOpOf(op string) vec.CmpOp {
	switch op {
	case "=":
		return vec.CmpEq
	case "<>":
		return vec.CmpNe
	case "<":
		return vec.CmpLt
	case "<=":
		return vec.CmpLe
	case ">":
		return vec.CmpGt
	default:
		return vec.CmpGe
	}
}

// evalCall dispatches a function expression: scalar builtin, aggregate
// (over the whole context, for non-grouped use), or a runtime UDF.
func (c *Conn) evalCall(ctx *evalCtx, call *sqlparse.FuncCall) (*storage.Column, error) {
	name := strings.ToLower(call.Name)
	if isAggregateName(name) {
		v, err := c.evalAggregate(ctx, call)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	if fn, ok := scalarBuiltins[name]; ok {
		args, err := c.evalArgs(ctx, call.Args)
		if err != nil {
			return nil, err
		}
		return fn(args)
	}
	if name == extractFuncName {
		return nil, core.Errorf(core.KindConstraint,
			"%s is table-valued; use it in FROM", extractFuncName)
	}
	if c.DB.cat.HasFunction(call.Name) {
		argCols, isColumn, err := c.udfArgColumns(ctx, call.Args)
		if err != nil {
			return nil, err
		}
		out, err := c.callScalarUDF(call.Name, argCols, isColumn)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, core.Errorf(core.KindName, "no such function: %s", call.Name)
}

func (c *Conn) evalArgs(ctx *evalCtx, args []sqlparse.Expr) ([]*storage.Column, error) {
	out := make([]*storage.Column, len(args))
	for i, a := range args {
		col, err := c.evalExpr(ctx, a)
		if err != nil {
			return nil, err
		}
		out[i] = col
	}
	return out, nil
}

// udfArgColumns evaluates UDF arguments, expanding table-valued subqueries
// into one column per output column (the paper's
// train_rnforest((SELECT data, labels FROM trainingset), n) shape). The
// parallel isColumn slice records MonetDB/Python's calling convention per
// argument: column references and subquery outputs arrive in the UDF as
// arrays (lists), constant expressions as scalars — regardless of how many
// rows the column happens to hold.
func (c *Conn) udfArgColumns(ctx *evalCtx, args []sqlparse.Expr) ([]*storage.Column, []bool, error) {
	var out []*storage.Column
	var isColumn []bool
	for _, a := range args {
		if sub, ok := a.(*sqlparse.Subquery); ok {
			t, err := c.evalSelect(sub.Sel)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, t.Cols...)
			for range t.Cols {
				isColumn = append(isColumn, true)
			}
			continue
		}
		col, err := c.evalExpr(ctx, a)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, col)
		isColumn = append(isColumn, exprIsColumnar(a))
	}
	return out, isColumn, nil
}

// exprIsColumnar reports whether an argument expression derives from table
// data (and therefore arrives in the UDF as a list). Aggregates reduce
// columns to scalars, so they do not count as columnar.
func exprIsColumnar(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		return true
	case *sqlparse.Subquery:
		return true
	case *sqlparse.BinaryExpr:
		return exprIsColumnar(e.L) || exprIsColumnar(e.R)
	case *sqlparse.UnaryExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.CastExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.IsNullExpr:
		return exprIsColumnar(e.X)
	case *sqlparse.FuncCall:
		if isAggregateName(e.Name) {
			return false
		}
		for _, a := range e.Args {
			if exprIsColumnar(a) {
				return true
			}
		}
	}
	return false
}

// ---- shared row accessors (scalar reference, ORDER BY, builtins) ----

func numericAt(c *storage.Column, i int) (float64, bool) {
	switch c.Typ {
	case storage.TInt:
		return float64(c.Ints[i]), true
	case storage.TFloat:
		return c.Flts[i], true
	case storage.TBool:
		if c.Bools[i] {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

func truthyAt(c *storage.Column, i int) bool {
	if c.IsNull(i) {
		return false
	}
	switch c.Typ {
	case storage.TBool:
		return c.Bools[i]
	case storage.TInt:
		return c.Ints[i] != 0
	case storage.TFloat:
		return c.Flts[i] != 0
	case storage.TStr:
		return c.Strs[i] != ""
	default:
		return false
	}
}

// compareAt orders two cells: exact for int pairs, via float64 for other
// numeric pairs, lexicographic for strings.
func compareAt(l *storage.Column, li int, r *storage.Column, ri int) (int, error) {
	if l.Typ == storage.TInt && r.Typ == storage.TInt {
		a, b := l.Ints[li], r.Ints[ri]
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	a, aok := numericAt(l, li)
	b, bok := numericAt(r, ri)
	if aok && bok {
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if l.Typ == storage.TStr && r.Typ == storage.TStr {
		return strings.Compare(l.Strs[li], r.Strs[ri]), nil
	}
	return 0, core.Errorf(core.KindType, "cannot compare %s with %s", l.Typ, r.Typ)
}

func castColumn(x *storage.Column, to storage.Type) (*storage.Column, error) {
	out := storage.NewColumn("", to)
	out.Reserve(x.Len())
	for i := 0; i < x.Len(); i++ {
		if x.IsNull(i) {
			out.AppendNull()
			continue
		}
		if err := out.AppendValue(x.Value(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- scalar builtins ----

type scalarFn func(args []*storage.Column) (*storage.Column, error)

var scalarBuiltins = map[string]scalarFn{
	"abs":    fnAbs,
	"length": fnLength,
	"upper":  fnStrMap(strings.ToUpper),
	"lower":  fnStrMap(strings.ToLower),
	"sqrt":   fnFloatMap("sqrt", math.Sqrt),
	"floor":  fnFloatMap("floor", math.Floor),
	"ceil":   fnFloatMap("ceil", math.Ceil),
	"round":  fnRound,
}

func isBuiltinName(name string) bool {
	n := strings.ToLower(name)
	if _, ok := scalarBuiltins[n]; ok {
		return true
	}
	return isAggregateName(n) || n == extractFuncName
}

func arity(name string, args []*storage.Column, want int) error {
	if len(args) != want {
		return core.Errorf(core.KindType, "%s expects %d argument(s), got %d", name, want, len(args))
	}
	return nil
}

// allNullOrErr resolves a builtin applied to a column of the wrong type:
// an error if any row is non-NULL (the historical per-row check would
// have reached it), else an all-NULL column of the given type.
func allNullOrErr(x *storage.Column, outTyp storage.Type, err error) (*storage.Column, error) {
	for i := 0; i < x.Len(); i++ {
		if !x.IsNull(i) {
			return nil, err
		}
	}
	return vec.AllNull(outTyp, x.Len()), nil
}

func fnAbs(args []*storage.Column) (*storage.Column, error) {
	if err := arity("ABS", args, 1); err != nil {
		return nil, err
	}
	x := args[0]
	n := x.Len()
	switch x.Typ {
	case storage.TInt:
		out := storage.NewColumn("", storage.TInt)
		out.Reserve(n)
		for i := 0; i < n; i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			v := x.Ints[i]
			if v < 0 {
				v = -v
			}
			out.AppendInt(v)
		}
		return out, nil
	case storage.TFloat:
		out := storage.NewColumn("", storage.TFloat)
		out.Reserve(n)
		for i := 0; i < n; i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendFloat(math.Abs(x.Flts[i]))
		}
		return out, nil
	default:
		return allNullOrErr(x, x.Typ,
			core.Errorf(core.KindType, "ABS needs a numeric argument"))
	}
}

func fnLength(args []*storage.Column) (*storage.Column, error) {
	if err := arity("LENGTH", args, 1); err != nil {
		return nil, err
	}
	x := args[0]
	out := storage.NewColumn("", storage.TInt)
	switch x.Typ {
	case storage.TStr:
		out.Reserve(x.Len())
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendInt(int64(len(x.Strs[i])))
		}
		return out, nil
	case storage.TBlob:
		out.Reserve(x.Len())
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendInt(int64(len(x.Blobs[i])))
		}
		return out, nil
	default:
		return allNullOrErr(x, storage.TInt,
			core.Errorf(core.KindType, "LENGTH needs a string or blob argument"))
	}
}

func fnStrMap(fn func(string) string) scalarFn {
	return func(args []*storage.Column) (*storage.Column, error) {
		if err := arity("string function", args, 1); err != nil {
			return nil, err
		}
		x := args[0]
		if x.Typ != storage.TStr {
			return nil, core.Errorf(core.KindType, "expected a string argument")
		}
		out := storage.NewColumn("", storage.TStr)
		out.Reserve(x.Len())
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendStr(fn(x.Strs[i]))
		}
		return out, nil
	}
}

func fnFloatMap(name string, fn func(float64) float64) scalarFn {
	return func(args []*storage.Column) (*storage.Column, error) {
		if err := arity(name, args, 1); err != nil {
			return nil, err
		}
		x := args[0]
		n := x.Len()
		out := storage.NewColumn("", storage.TFloat)
		switch x.Typ {
		case storage.TFloat:
			out.Reserve(n)
			for i := 0; i < n; i++ {
				if x.IsNull(i) {
					out.AppendNull()
					continue
				}
				out.AppendFloat(fn(x.Flts[i]))
			}
		case storage.TInt:
			out.Reserve(n)
			for i := 0; i < n; i++ {
				if x.IsNull(i) {
					out.AppendNull()
					continue
				}
				out.AppendFloat(fn(float64(x.Ints[i])))
			}
		case storage.TBool:
			out.Reserve(n)
			for i := 0; i < n; i++ {
				if x.IsNull(i) {
					out.AppendNull()
					continue
				}
				v := 0.0
				if x.Bools[i] {
					v = 1
				}
				out.AppendFloat(fn(v))
			}
		default:
			return allNullOrErr(x, storage.TFloat,
				core.Errorf(core.KindType, "%s needs a numeric argument", name))
		}
		return out, nil
	}
}

func fnRound(args []*storage.Column) (*storage.Column, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, core.Errorf(core.KindType, "ROUND expects 1 or 2 arguments")
	}
	digits := int64(0)
	if len(args) == 2 {
		if args[1].Typ != storage.TInt || args[1].Len() != 1 {
			return nil, core.Errorf(core.KindType, "ROUND digits must be an integer constant")
		}
		digits = args[1].Ints[0]
	}
	scale := math.Pow(10, float64(digits))
	round := fnFloatMap("ROUND", func(v float64) float64 {
		return math.Round(v*scale) / scale
	})
	out, err := round(args[:1])
	if err != nil {
		return nil, err
	}
	return out, nil
}
