// Package engine implements the query executor of the embedded MonetDB-like
// database: DDL/DML, SELECT evaluation, and — centrally for the paper —
// UDF execution in the operator-at-a-time model (whole columns per call)
// dispatched through the udfrt runtime registry keyed by the LANGUAGE
// clause (the embedded PYTHON interpreter and the native GO runtime ship
// built in), loopback queries via the _conn object, the tuple-at-a-time
// mode of §2.4 for comparison, and the server-side sys_extract function
// that devUDF substitutes for a UDF call to pull its input data out for
// local debugging.
package engine

import (
	"bytes"
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/udfrt"

	// Register the sklearn/mllib module shims with the script runtime so
	// UDFs can import them, matching the paper's Listing 1.
	_ "repro/internal/mllib"
	// Register the native GO runtime (the PYTHON runtime registers through
	// udf.go's direct pyrt import).
	_ "repro/internal/udfrt/gort"
)

// Mode selects the UDF processing model (paper §2.4).
type Mode int

const (
	// ModeOperatorAtATime calls a scalar UDF once with whole columns
	// (MonetDB's model).
	ModeOperatorAtATime Mode = iota
	// ModeTupleAtATime calls a scalar UDF once per row (the Postgres/MySQL
	// model, simulated per §2.4 "by issuing a loop over the input tuples").
	ModeTupleAtATime
)

func (m Mode) String() string {
	if m == ModeTupleAtATime {
		return "tuple-at-a-time"
	}
	return "operator-at-a-time"
}

// DB is an embedded database instance.
type DB struct {
	mu  sync.Mutex
	cat *storage.Catalog
	// FS backs COPY INTO and UDF file access (os.listdir / open). Defaults
	// to the process file system.
	FS core.FS
	// Mode selects the UDF processing model.
	Mode Mode
	// MaxUDFSteps bounds each UDF invocation's interpreter steps
	// (0 = unlimited).
	MaxUDFSteps int64
	// UDFOutput receives print() output of server-side UDFs — the paper's
	// "print debugging" channel. Defaults to io.Discard.
	UDFOutput *bytes.Buffer
	// Workers caps morsel-parallel kernel execution: 0 selects
	// GOMAXPROCS, 1 pins execution to the query goroutine.
	Workers int
	// MorselSize overrides the rows-per-morsel split
	// (0 = vec.DefaultMorselSize). Inputs smaller than one morsel always
	// run inline.
	MorselSize int
	// ScalarRef routes expression evaluation, filtering, grouping,
	// aggregation and DISTINCT through the retained row-at-a-time
	// reference implementation instead of the vectorized kernels — the
	// semantic baseline for differential tests and benchmarks.
	ScalarRef bool
	// PlanCacheSize bounds the parsed-plan cache keyed by normalized SQL
	// (0 applies the 256 default; negative disables caching). Identical
	// statement text — prepared or not — skips the lexer and parser; the
	// cache is flushed on every catalog change.
	PlanCacheSize int
	// MaxResultRows bounds the rows a single SELECT may materialize
	// (0 = unlimited). Oversize results abort with a typed KindResource
	// error instead of shipping; queries that want big scans add a LIMIT.
	MaxResultRows int64
	// MaxUDFWall bounds the wall-clock time of one UDF runtime invocation
	// (0 = unlimited) — the generalization of MaxUDFSteps to runtimes
	// without an interpreter step counter (native GO). Interpreter-backed
	// runtimes abort mid-run; native calls are measured and fail the
	// statement once over budget.
	MaxUDFWall time.Duration

	// QueryLog, when set, backs the sys.query_log virtual table with the
	// span breakdowns of recently finished queries. The wire server (or
	// any embedder) records entries; the engine only reads it.
	QueryLog *obs.QueryLog

	compiled map[string]*compiledUDF

	// Durability hooks installed by SetPersistence (see persist.go):
	// onCommit is offered every committed Change under mu; checkpoint backs
	// DB.Checkpoint.
	onCommit   func(Change) error
	checkpoint func() error

	// metrics is set once by EnableObs before the DB starts serving and
	// read without mu on hot paths; nil means observability is off.
	metrics *dbMetrics
	// activeTrace is the trace of the statement currently executing under
	// mu, set by the *Context entry points so parse/UDF/WAL sub-stages can
	// report spans without threading a context through every operator.
	activeTrace *obs.Trace
	// activeIntr is the interrupt of the statement currently executing
	// under mu — the cooperative-cancellation signal the pipeline-stage
	// and morsel-boundary checkpoints observe. Fixed for the statement's
	// duration, so morsel workers read it without synchronization.
	activeIntr *intrState
	// queriesCancelled counts statements aborted by an interrupt (client
	// disconnect, deadline, server stop). Atomic so a metrics scrape never
	// takes the database lock.
	queriesCancelled atomic.Uint64

	// plan cache state: the map and LRU are guarded by mu; the counters
	// are atomic so a metrics scrape never has to take the database lock
	// (a paused debuggee can hold it indefinitely).
	plans         map[string]*planEntry
	planLRU       *list.List
	planHits      atomic.Uint64
	planMisses    atomic.Uint64
	planEvictions atomic.Uint64
	planEntries   atomic.Int64
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{
		cat:      storage.NewCatalog(),
		FS:       core.OSFS{},
		compiled: map[string]*compiledUDF{},
	}
}

// RegisterTable installs a pre-built table into the catalog under the
// database lock — the bulk-load path for data generators and tests whose
// volumes would be impractical to feed through INSERT statements.
func (db *DB) RegisterTable(t *storage.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.invalidatePlans()
	if err := db.cat.CreateTable(t); err != nil {
		return err
	}
	if err := db.commit(Change{Kind: ChangeCreateTable, Table: t}); err != nil {
		_ = db.cat.DropTable(t.Name)
		return err
	}
	return nil
}

// Conn is a session: credentials plus the database handle. The wire server
// creates one per authenticated client; the encryption option of the
// extract function derives its key from the session password.
type Conn struct {
	DB       *DB
	User     string
	Password string
	// UDFInvoke, when set, intercepts every interpreter-backed UDF
	// invocation on this session: it receives the UDF's name, the
	// interpreter about to run it, the source lines of the compiled wrapper
	// module, and the call thunk, and must return the thunk's result
	// (calling it exactly once, on any goroutine). The wire server's remote
	// debugger uses it to run the invocation under the trace hook. Only
	// debuggable runtimes (udfrt.IsDebuggable) route calls through it.
	UDFInvoke udfrt.InvokeHook

	// binds holds the current execution's bind arguments (length-1 columns,
	// one per placeholder slot). It is set by Stmt.exec under the database
	// lock and read by placeholder evaluation; plain Query/Exec rejects
	// parameterized statements before execution, so stale binds can never
	// be observed.
	binds []*storage.Column
}

// Result is the outcome of one statement.
type Result struct {
	// Table holds the result set; nil for statements without one.
	Table *storage.Table
	// Msg is the status tag ("CREATE TABLE", "INSERT 3", ...).
	Msg string
}

// Exec parses and executes one statement under the database lock. It
// deliberately does not route through execTraced: the trace install
// and its deferred restore cost tens of nanoseconds, and this is the
// path every untraced statement takes.
func (c *Conn) Exec(sql string) (*Result, error) {
	c.DB.mu.Lock()
	defer c.DB.mu.Unlock()
	return c.exec(sql)
}

// ExecContext is Exec with a context, honored for real: cancelling the
// context (or passing one with a deadline) aborts the statement
// mid-execution at the next pipeline-stage or morsel-boundary checkpoint
// with a typed core.KindCancelled error, releasing the database lock
// normally. When the context additionally carries an obs.Trace
// (obs.WithTrace), the execution reports its parse, execute, UDF and WAL
// spans into it.
func (c *Conn) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return c.execGuarded(InterruptFrom(ctx), obs.TraceFrom(ctx), sql)
}

// ExecTraced is ExecContext without the context detour: the wire
// server's per-query hot path, where the context allocation and value
// lookup are measurable against sub-microsecond statements. tr may be
// nil. Embedded callers normally use ExecContext.
func (c *Conn) ExecTraced(tr *obs.Trace, sql string) (*Result, error) {
	return c.execGuarded(Interrupt{}, tr, sql)
}

// ExecInterruptible is the fully explicit entry point: an interrupt
// (cancellation channel + deadline) and an optional trace, with no
// context allocation — the wire server's per-query path. Either may be
// zero/nil.
func (c *Conn) ExecInterruptible(intr Interrupt, tr *obs.Trace, sql string) (*Result, error) {
	return c.execGuarded(intr, tr, sql)
}

// execGuarded runs one statement under the database lock with tr
// installed as the active trace and intr as the active interrupt. With
// neither armed it takes the plain Exec path so unguarded statements pay
// nothing.
func (c *Conn) execGuarded(intr Interrupt, tr *obs.Trace, sql string) (*Result, error) {
	if !intr.armed() {
		if tr == nil {
			return c.Exec(sql)
		}
		c.DB.mu.Lock()
		defer c.DB.mu.Unlock()
		prev := c.DB.activeTrace
		c.DB.activeTrace = tr
		defer func() { c.DB.activeTrace = prev }()
		et := tr.StartStage(obs.StageExec)
		defer et.Done()
		return c.exec(sql)
	}
	st := &intrState{done: intr.Done, deadline: intr.Deadline, hasDeadline: !intr.Deadline.IsZero()}
	c.DB.mu.Lock()
	defer c.DB.mu.Unlock()
	// A statement that waited out its deadline behind a slow predecessor
	// aborts before doing any work.
	if err := st.err(); err != nil {
		c.DB.queriesCancelled.Add(1)
		return nil, err
	}
	prevI := c.DB.activeIntr
	c.DB.activeIntr = st
	defer func() { c.DB.activeIntr = prevI }()
	var res *Result
	var err error
	if tr == nil {
		res, err = c.exec(sql)
	} else {
		prev := c.DB.activeTrace
		c.DB.activeTrace = tr
		defer func() { c.DB.activeTrace = prev }()
		et := tr.StartStage(obs.StageExec)
		res, err = c.exec(sql)
		et.Done()
	}
	if err != nil && core.IsCancelled(err) {
		c.DB.queriesCancelled.Add(1)
	}
	return res, err
}

// QueriesCancelled reports how many statements this DB has aborted on an
// interrupt (client disconnect, deadline, server stop).
func (db *DB) QueriesCancelled() uint64 { return db.queriesCancelled.Load() }

// ExecAll executes a semicolon-separated script, stopping at the first
// error.
func (c *Conn) ExecAll(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	c.DB.mu.Lock()
	defer c.DB.mu.Unlock()
	var out []*Result
	for _, st := range stmts {
		r, err := c.execStmt(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// exec runs one statement without taking the lock (loopback queries from
// inside UDFs re-enter here). Parsing goes through the DB plan cache, so a
// statement executed repeatedly with identical text is lexed and parsed
// once.
func (c *Conn) exec(sql string) (*Result, error) {
	st, nparams, err := c.DB.cachedParse(sql)
	if err != nil {
		return nil, err
	}
	if nparams > 0 {
		return nil, core.Errorf(core.KindConstraint,
			"statement expects %d bind parameter(s); use Prepare and pass arguments", nparams)
	}
	return c.execStmt(st)
}

func (c *Conn) execStmt(st sqlparse.Statement) (*Result, error) {
	switch st := st.(type) {
	case *sqlparse.CreateTable:
		t := storage.NewTable(st.Name, st.Schema)
		if err := c.DB.cat.CreateTable(t); err != nil {
			return nil, err
		}
		if err := c.DB.commit(Change{Kind: ChangeCreateTable, Table: t}); err != nil {
			_ = c.DB.cat.DropTable(t.Name)
			return nil, err
		}
		c.DB.invalidatePlans()
		return &Result{Msg: "CREATE TABLE"}, nil
	case *sqlparse.DropTable:
		old, err := c.DB.cat.Table(st.Name)
		if err != nil {
			return nil, err
		}
		if err := c.DB.cat.DropTable(st.Name); err != nil {
			return nil, err
		}
		if err := c.DB.commit(Change{Kind: ChangeDropTable, Name: old.Name}); err != nil {
			_ = c.DB.cat.CreateTable(old)
			return nil, err
		}
		c.DB.invalidatePlans()
		return &Result{Msg: "DROP TABLE"}, nil
	case *sqlparse.CreateFunction:
		return c.createFunction(st)
	case *sqlparse.DropFunction:
		old, err := c.DB.cat.Function(st.Name)
		if err != nil {
			return nil, err
		}
		if err := c.DB.cat.DropFunction(st.Name); err != nil {
			return nil, err
		}
		if err := c.DB.commit(Change{Kind: ChangeDropFunction, Name: old.Name}); err != nil {
			_ = c.DB.cat.InstallFunction(old, true)
			return nil, err
		}
		delete(c.DB.compiled, strings.ToLower(st.Name))
		c.DB.invalidatePlans()
		return &Result{Msg: "DROP FUNCTION"}, nil
	case *sqlparse.Insert:
		return c.insert(st)
	case *sqlparse.CopyInto:
		return c.copyInto(st)
	case *sqlparse.Select:
		t, err := c.evalSelect(st)
		if err != nil {
			return nil, err
		}
		return &Result{Table: t, Msg: fmt.Sprintf("SELECT %d", t.NumRows())}, nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported statement %T", st)
	}
}

func (c *Conn) createFunction(st *sqlparse.CreateFunction) (*Result, error) {
	if isBuiltinName(st.Name) {
		return nil, core.Errorf(core.KindConstraint,
			"cannot create function %q: name is reserved", st.Name)
	}
	def := &storage.FuncDef{
		Name:     st.Name,
		Params:   st.Params,
		Language: st.Language,
		Body:     st.Body,
		Returns:  st.Returns,
		IsTable:  st.IsTable,
	}
	// The parser accepts any LANGUAGE; creation requires a registered
	// runtime so a typo'd language fails here rather than at first call.
	if _, err := udfrt.Lookup(def.Language); err != nil {
		return nil, err
	}
	prior, _ := c.DB.cat.Function(st.Name)
	if err := c.DB.cat.CreateFunction(def, st.OrReplace); err != nil {
		return nil, err
	}
	if err := c.DB.commit(Change{Kind: ChangeCreateFunction, Func: def, Replace: st.OrReplace}); err != nil {
		if prior != nil {
			_ = c.DB.cat.InstallFunction(prior, true)
		} else {
			_ = c.DB.cat.DropFunction(def.Name)
		}
		return nil, err
	}
	delete(c.DB.compiled, strings.ToLower(st.Name))
	c.DB.invalidatePlans()
	return &Result{Msg: "CREATE FUNCTION"}, nil
}

func (c *Conn) insert(st *sqlparse.Insert) (*Result, error) {
	t, err := c.DB.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	n0 := t.NumRows()
	for _, row := range st.Rows {
		vals := make([]any, len(row))
		for i, e := range row {
			v, err := c.constEval(e)
			if err != nil {
				t.Truncate(n0)
				return nil, err
			}
			vals[i] = v
		}
		if err := t.AppendRow(vals); err != nil {
			t.Truncate(n0)
			return nil, err
		}
	}
	if err := c.DB.commit(Change{Kind: ChangeInsert, Name: t.Name, Table: t, From: n0, To: t.NumRows()}); err != nil {
		t.Truncate(n0)
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("INSERT %d", len(st.Rows))}, nil
}

// constEval evaluates a literal (possibly negated) INSERT value, or a bind
// parameter of a prepared INSERT.
func (c *Conn) constEval(e sqlparse.Expr) (any, error) {
	switch e := e.(type) {
	case *sqlparse.IntLit:
		return e.Value, nil
	case *sqlparse.FloatLit:
		return e.Value, nil
	case *sqlparse.StrLit:
		return e.Value, nil
	case *sqlparse.BoolLit:
		return e.Value, nil
	case *sqlparse.NullLit:
		return nil, nil
	case *sqlparse.Placeholder:
		col, err := c.bindColumn(e)
		if err != nil {
			return nil, err
		}
		return col.Value(0), nil
	case *sqlparse.UnaryExpr:
		if e.Op == "-" {
			v, err := c.constEval(e.X)
			if err != nil {
				return nil, err
			}
			switch v := v.(type) {
			case int64:
				return -v, nil
			case float64:
				return -v, nil
			}
		}
		return nil, core.Errorf(core.KindSyntax, "INSERT values must be literals")
	case *sqlparse.BinaryExpr:
		l, err := c.constEval(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.constEval(e.R)
		if err != nil {
			return nil, err
		}
		li, lok := l.(int64)
		ri, rok := r.(int64)
		if lok && rok {
			switch e.Op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			}
		}
		return nil, core.Errorf(core.KindSyntax, "INSERT values must be literals")
	default:
		return nil, core.Errorf(core.KindSyntax, "INSERT values must be literals")
	}
}

func (c *Conn) copyInto(st *sqlparse.CopyInto) (*Result, error) {
	t, err := c.DB.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	data, err := c.DB.FS.ReadFile(st.Path)
	if err != nil {
		return nil, err
	}
	n0 := t.NumRows()
	n, err := t.LoadCSV(bytes.NewReader(data), st.Header)
	if err != nil {
		// A mid-load error used to leave the rows before the bad record
		// applied; COPY is all-or-nothing now.
		t.Truncate(n0)
		return nil, err
	}
	if err := c.DB.commit(Change{Kind: ChangeInsert, Name: t.Name, Table: t, From: n0, To: t.NumRows()}); err != nil {
		t.Truncate(n0)
		return nil, err
	}
	return &Result{Msg: fmt.Sprintf("COPY %d", n)}, nil
}

// Catalog exposes the catalog for in-process embedders (the devudf package
// uses it in local/embedded mode; the wire server goes through SQL).
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Lock runs fn with the database lock held, for embedders that need a
// consistent multi-statement view.
func (db *DB) Lock(fn func(cat *storage.Catalog) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return fn(db.cat)
}
