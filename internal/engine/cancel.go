package engine

import (
	"context"
	"time"

	"repro/internal/core"
)

// Interrupt is the cancellation signal of one statement execution: a
// channel whose close aborts the query (client disconnect, server stop)
// and an optional wall-clock deadline. The zero value never interrupts.
//
// The engine honors interrupts cooperatively: checkpoints between
// pipeline stages and at morsel boundaries observe the signal, abort the
// statement with a typed core.KindCancelled error, and release the
// database lock normally — no goroutine is killed, no lock leaks. The
// checkpoint cost is one nil-check per morsel (16k rows) when no
// interrupt is armed.
type Interrupt struct {
	// Done, when non-nil, aborts the statement once closed.
	Done <-chan struct{}
	// Deadline, when non-zero, aborts the statement once passed.
	Deadline time.Time
}

// armed reports whether the interrupt can ever fire.
func (i Interrupt) armed() bool { return i.Done != nil || !i.Deadline.IsZero() }

// InterruptFrom extracts the cancellation signal of a context: its Done
// channel and deadline, if any. The engine's *Context entry points use it
// so a context.WithTimeout caller gets real mid-statement cancellation.
func InterruptFrom(ctx context.Context) Interrupt {
	if ctx == nil {
		return Interrupt{}
	}
	intr := Interrupt{Done: ctx.Done()}
	if d, ok := ctx.Deadline(); ok {
		intr.Deadline = d
	}
	return intr
}

// intrState is the per-statement interrupt installed on DB.activeIntr
// while the statement executes under the database lock. Like activeTrace
// it is fixed for the statement's duration, so morsel workers may read it
// without synchronization.
type intrState struct {
	done        <-chan struct{}
	deadline    time.Time
	hasDeadline bool
}

// err reports the typed cancellation error once the interrupt has fired,
// or nil. Nil-receiver-safe: the unarmed path is one pointer check.
func (st *intrState) err() error {
	if st == nil {
		return nil
	}
	if st.done != nil {
		select {
		case <-st.done:
			return core.Wrapf(core.KindCancelled, context.Canceled,
				"query cancelled")
		default:
		}
	}
	if st.hasDeadline && !time.Now().Before(st.deadline) {
		return core.Wrapf(core.KindCancelled, context.DeadlineExceeded,
			"query deadline exceeded")
	}
	return nil
}

// stopped adapts err to the vec.Pol.Stop morsel-boundary hook.
func (st *intrState) stopped() bool { return st.err() != nil }

// interruptErr is the engine's pipeline-stage checkpoint: nil while the
// statement may keep running, the typed cancellation error once it must
// abort. Called between stages of evalSelect and around UDF invocations.
func (c *Conn) interruptErr() error { return c.DB.activeIntr.err() }

// checkBudgetRows enforces the per-query result-row budget. Zero budget
// admits everything; LIMIT clauses under the budget are unaffected.
func (c *Conn) checkBudgetRows(rows int) error {
	if max := c.DB.MaxResultRows; max > 0 && int64(rows) > max {
		return core.Errorf(core.KindResource,
			"result exceeds the per-query row budget (%d rows > %d); add a LIMIT or raise the budget", rows, max)
	}
	return nil
}
