package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// failNext arms a persistence hook that vetoes the next commit.
type failNext struct {
	fail    bool
	changes []Change
}

func (h *failNext) hook(ch Change) error {
	if h.fail {
		h.fail = false
		return core.Errorf(core.KindIO, "disk full")
	}
	// Per the Change contract, hooks must not retain live pointers: the
	// table keeps mutating after the hook returns. Deep-copy via the codec,
	// like the WAL serializes records (insert changes carry a live table
	// plus the batch row range).
	if ch.Table != nil {
		enc := []byte(nil)
		if ch.To > ch.From {
			enc = storage.EncodeTableRange(nil, ch.Table, ch.From, ch.To)
		} else {
			enc = storage.EncodeTable(nil, ch.Table)
		}
		cp, err := storage.DecodeTable(storage.NewByteReader(enc))
		if err != nil {
			return err
		}
		ch.Table, ch.From, ch.To = cp, 0, 0
	}
	h.changes = append(h.changes, ch)
	return nil
}

func newHookedDB(t *testing.T) (*DB, *Conn, *failNext) {
	t.Helper()
	db := NewDB()
	h := &failNext{}
	db.SetPersistence(h.hook, nil)
	return db, &Conn{DB: db, User: "u", Password: "p"}, h
}

func TestHookVetoRollsBackCreateTable(t *testing.T) {
	db, c, h := newHookedDB(t)
	h.fail = true
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER)`); err == nil {
		t.Fatal("want commit error")
	}
	err := db.Lock(func(cat *storage.Catalog) error {
		if _, err := cat.Table("t"); err == nil {
			t.Fatal("vetoed CREATE TABLE left the table behind")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// and the statement works once the hook recovers
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
}

func TestHookVetoRollsBackInsert(t *testing.T) {
	_, c, h := newHookedDB(t)
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	h.fail = true
	if _, err := c.Exec(`INSERT INTO t VALUES (2), (3)`); err == nil {
		t.Fatal("want commit error")
	}
	r, err := c.Exec(`SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 1 || r.Table.Cols[0].Ints[0] != 1 {
		t.Fatalf("vetoed INSERT must leave no rows behind, have %v", r.Table.Cols[0].Ints)
	}
}

func TestHookVetoRollsBackDropTable(t *testing.T) {
	_, c, h := newHookedDB(t)
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (42)`); err != nil {
		t.Fatal(err)
	}
	h.fail = true
	if _, err := c.Exec(`DROP TABLE t`); err == nil {
		t.Fatal("want commit error")
	}
	r, err := c.Exec(`SELECT i FROM t`)
	if err != nil {
		t.Fatalf("vetoed DROP TABLE lost the table: %v", err)
	}
	if r.Table.NumRows() != 1 {
		t.Fatalf("vetoed DROP TABLE lost rows: %d", r.Table.NumRows())
	}
}

func TestHookVetoRollsBackFunctionDDL(t *testing.T) {
	_, c, h := newHookedDB(t)
	mk := `CREATE FUNCTION f(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return column
}`
	h.fail = true
	if _, err := c.Exec(mk); err == nil {
		t.Fatal("want commit error")
	}
	if _, err := c.Exec(`SELECT f(1)`); err == nil {
		t.Fatal("vetoed CREATE FUNCTION left the function behind")
	}
	if _, err := c.Exec(mk); err != nil {
		t.Fatal(err)
	}
	h.fail = true
	if _, err := c.Exec(`DROP FUNCTION f`); err == nil {
		t.Fatal("want commit error")
	}
	if _, err := c.Exec(`SELECT f(1)`); err != nil {
		t.Fatalf("vetoed DROP FUNCTION lost the function: %v", err)
	}

	// CREATE OR REPLACE: veto must restore the prior definition.
	replace := `CREATE OR REPLACE FUNCTION f(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return [v * 100 for v in column]
}`
	h.fail = true
	if _, err := c.Exec(replace); err == nil {
		t.Fatal("want commit error")
	}
	r, err := c.Exec(`SELECT f(7)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Table.Cols[0].Ints[0]; got != 7 {
		t.Fatalf("vetoed REPLACE left new body active: f(7) = %d", got)
	}
}

func TestInsertBadRowIsAtomic(t *testing.T) {
	// Independent of any hook: a multi-row INSERT that fails on a later row
	// must not leave earlier rows applied.
	db := NewDB()
	c := &Conn{DB: db, User: "u", Password: "p"}
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1), ('oops')`); err == nil {
		t.Fatal("want type error")
	}
	r, err := c.Exec(`SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 0 {
		t.Fatalf("failed INSERT left %d rows behind", r.Table.NumRows())
	}
}

func TestHookSeesInsertBatch(t *testing.T) {
	_, c, h := newHookedDB(t)
	if _, err := c.Exec(`CREATE TABLE t (i INTEGER, s STRING)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	var ins *Change
	for i := range h.changes {
		if h.changes[i].Kind == ChangeInsert {
			ins = &h.changes[i]
		}
	}
	if ins == nil {
		t.Fatal("no ChangeInsert delivered")
	}
	if ins.Name != "t" || ins.Table == nil || ins.Table.NumRows() != 2 {
		t.Fatalf("insert change: name=%q table=%v", ins.Name, ins.Table)
	}
	if ins.Table.Cols[1].Strs[1] != "b" {
		t.Fatalf("insert batch content wrong: %v", ins.Table.Cols[1].Strs)
	}
}

func TestApplyChangeRoundTrip(t *testing.T) {
	// Changes captured from one DB replay into a fresh DB via ApplyChange —
	// the WAL recovery path — and reproduce identical state.
	db, c, h := newHookedDB(t)
	_ = db
	stmts := []string{
		`CREATE TABLE t (i INTEGER)`,
		`INSERT INTO t VALUES (1), (2)`,
		`CREATE TABLE gone (x INTEGER)`,
		`DROP TABLE gone`,
		`CREATE FUNCTION f(column INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return [v + 1 for v in column]
}`,
	}
	for _, s := range stmts {
		if _, err := c.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}

	db2 := NewDB()
	for _, ch := range h.changes {
		if err := db2.ApplyChange(ch); err != nil {
			t.Fatalf("ApplyChange(%v): %v", ch.Kind, err)
		}
	}
	c2 := &Conn{DB: db2, User: "u", Password: "p"}
	r, err := c2.Exec(`SELECT f(i) FROM t ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table.NumRows() != 2 || r.Table.Cols[0].Ints[1] != 3 {
		t.Fatalf("replayed state wrong: %v", r.Table.Cols[0].Ints)
	}
	if _, err := c2.Exec(`SELECT x FROM gone`); err == nil {
		t.Fatal("replay resurrected dropped table")
	}

	if err := db2.ApplyChange(Change{Kind: ChangeKind(99)}); err == nil {
		t.Fatal("unknown change kind must error")
	} else if !strings.Contains(err.Error(), "change kind") {
		t.Fatalf("unexpected error: %v", err)
	}
}
