package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
)

func scrape(t *testing.T, reg *obs.Registry) *obs.Scrape {
	t.Helper()
	var b strings.Builder
	reg.WritePrometheus(&b)
	sc, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not re-parse: %v\n%s", err, b.String())
	}
	return sc
}

// TestEngineMetrics drives a few statements through an instrumented DB
// and checks plan cache, row, and UDF series move as expected.
func TestEngineMetrics(t *testing.T) {
	c := prepTestDB(t)
	reg := obs.NewRegistry()
	c.DB.EnableObs(reg)

	const q = `SELECT i FROM nums WHERE i > 1`
	for i := 0; i < 3; i++ {
		if _, err := c.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(`SELECT plus_one(i) FROM nums WHERE i > 0`); err != nil {
		t.Fatal(err)
	}

	sc := scrape(t, reg)
	if hits := sc.Value("engine_plan_cache_hits_total", nil); hits < 2 {
		t.Errorf("plan cache hits = %v, want >= 2", hits)
	}
	if misses := sc.Value("engine_plan_cache_misses_total", nil); misses < 2 {
		t.Errorf("plan cache misses = %v, want >= 2", misses)
	}
	if entries := sc.Value("engine_plan_cache_entries", nil); entries < 1 {
		t.Errorf("plan cache entries = %v, want >= 1", entries)
	}
	// nums has 5 rows; four SELECTs scanned it.
	if scanned := sc.Value("engine_rows_scanned_total", nil); scanned < 20 {
		t.Errorf("rows scanned = %v, want >= 20", scanned)
	}
	if returned := sc.Value("engine_rows_returned_total", nil); returned < 9 {
		t.Errorf("rows returned = %v, want >= 9", returned)
	}
	py := map[string]string{"runtime": "python"}
	if calls := sc.Value("udf_calls_total", py); calls < 1 {
		t.Errorf("udf calls = %v, want >= 1", calls)
	}
	if rows := sc.Value("udf_batch_rows_total", py); rows < 4 {
		t.Errorf("udf batch rows = %v, want >= 4", rows)
	}
	if cnt := sc.Value("udf_call_seconds_count", py); cnt < 1 {
		t.Errorf("udf latency count = %v, want >= 1", cnt)
	}
	if errs := sc.Value("udf_errors_total", py); errs != 0 {
		t.Errorf("udf errors = %v, want 0", errs)
	}

	// A failing UDF increments the error counter.
	if _, err := c.Exec(`CREATE FUNCTION boom(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
		return x[100000]
	}`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT boom(i) FROM nums`); err == nil {
		t.Fatal("expected boom() to fail")
	}
	if errs := scrape(t, reg).Value("udf_errors_total", py); errs < 1 {
		t.Errorf("udf errors = %v, want >= 1 after failing call", errs)
	}
}

// TestPlanCacheEvictionCounter pins the new eviction counter against the
// LRU bound.
func TestPlanCacheEvictionCounter(t *testing.T) {
	c := prepTestDB(t)
	c.DB.PlanCacheSize = 4
	base := c.DB.PlanCacheStatsSnapshot()
	for i := 0; i < 10; i++ {
		if _, err := c.Exec(strings.Replace(`SELECT N AS v`, "N", string(rune('0'+i)), 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.DB.PlanCacheStatsSnapshot()
	if got := st.Evictions - base.Evictions; got != 6 {
		t.Errorf("evictions = %d, want 6 (10 plans through a 4-entry cache)", got)
	}
}

// TestExecContextTrace checks ExecContext reports spans into the carried
// trace: exec always, parse only on a cache miss, WAL when a commit hook
// is installed.
func TestExecContextTrace(t *testing.T) {
	c := prepTestDB(t)
	committed := 0
	c.DB.SetPersistence(func(Change) error { committed++; return nil }, nil)

	tr := obs.NewTrace(`INSERT INTO nums VALUES (9, 9.5, 'z')`, "monetdb")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := c.ExecContext(ctx, tr.Query); err != nil {
		t.Fatal(err)
	}
	if committed != 1 {
		t.Fatalf("commit hook ran %d times, want 1", committed)
	}
	if tr.Stage(obs.StageExec) <= 0 {
		t.Error("exec span not recorded")
	}
	if tr.Stage(obs.StageParse) <= 0 {
		t.Error("parse span not recorded on a cache miss")
	}
	if tr.Stage(obs.StageWAL) <= 0 {
		t.Error("wal span not recorded despite a commit hook")
	}
	if tr.CacheHit {
		t.Error("first execution must not report a cache hit")
	}

	tr2 := obs.NewTrace(tr.Query, "monetdb")
	if _, err := c.ExecContext(obs.WithTrace(context.Background(), tr2), tr2.Query); err != nil {
		t.Fatal(err)
	}
	if !tr2.CacheHit {
		t.Error("second execution should hit the plan cache")
	}
	if tr2.Stage(obs.StageParse) != 0 {
		t.Error("cache hit must not report parse time")
	}
}

// TestCommitVetoCounter: a refused WAL append rolls the statement back
// AND increments engine_commit_vetoes_total — the previously silent
// rejection the satellite task wants visible.
func TestCommitVetoCounter(t *testing.T) {
	c := prepTestDB(t)
	reg := obs.NewRegistry()
	c.DB.EnableObs(reg)
	veto := errors.New("disk full")
	c.DB.SetPersistence(func(Change) error { return veto }, nil)

	if _, err := c.Exec(`INSERT INTO nums VALUES (7, 7.5, 'y')`); err == nil {
		t.Fatal("vetoed insert should fail")
	}
	if _, err := c.Exec(`CREATE TABLE vetoed (x INTEGER)`); err == nil {
		t.Fatal("vetoed create should fail")
	}
	if got := scrape(t, reg).Value("engine_commit_vetoes_total", nil); got != 2 {
		t.Errorf("commit vetoes = %v, want 2", got)
	}
	// The rollback must have kept the catalog clean.
	c.DB.SetPersistence(nil, nil)
	res, err := c.Exec(`SELECT i FROM nums WHERE i = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 0 {
		t.Error("vetoed insert left rows behind")
	}
}

// TestStmtExecContextBindSpan: prepared execution reports the bind span
// and marks executions as plan reuse.
func TestStmtExecContextBindSpan(t *testing.T) {
	c := prepTestDB(t)
	st, err := c.Prepare(`SELECT i FROM nums WHERE i > ?`)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(st.SQL(), "monetdb")
	res, err := st.ExecContext(obs.WithTrace(context.Background(), tr), int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.NumRows())
	}
	if tr.Stage(obs.StageBind) <= 0 {
		t.Error("bind span not recorded")
	}
	if tr.Stage(obs.StageExec) <= 0 {
		t.Error("exec span not recorded")
	}
	if !tr.CacheHit {
		t.Error("prepared execution should count as plan reuse")
	}
}

// TestQueryLogVirtualTable: sys.query_log materializes the DB's query
// log ring, empty-but-queryable when no log is configured.
func TestQueryLogVirtualTable(t *testing.T) {
	c := prepTestDB(t)

	res, err := c.Exec(`SELECT * FROM sys.query_log`)
	if err != nil {
		t.Fatalf("sys.query_log without a log: %v", err)
	}
	if res.Table.NumRows() != 0 {
		t.Fatalf("unconfigured query log should be empty, got %d rows", res.Table.NumRows())
	}

	c.DB.QueryLog = obs.NewQueryLog(8)
	tr := obs.NewTrace(`SELECT 1 AS one`, "monetdb")
	tr.Rows = 1
	tr.CacheHit = true
	tr.AddStage(obs.StageExec, 2e6)
	tr.AddStage(obs.StageUDF, 1e6)
	c.DB.QueryLog.Record(tr, 5e6)

	res, err = c.Exec(`SELECT usr, query, rows, cache_hit, total_ms, exec_ms, udf_ms FROM sys.query_log`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 {
		t.Fatalf("query log rows = %d, want 1", res.Table.NumRows())
	}
	row := map[string]any{}
	for _, col := range res.Table.Cols {
		row[col.Name] = col.Value(0)
	}
	if row["usr"] != "monetdb" || row["query"] != `SELECT 1 AS one` {
		t.Errorf("unexpected identity columns: %+v", row)
	}
	if row["rows"] != int64(1) || row["cache_hit"] != true {
		t.Errorf("unexpected rows/cache_hit: %+v", row)
	}
	if row["total_ms"] != 5.0 || row["exec_ms"] != 2.0 || row["udf_ms"] != 1.0 {
		t.Errorf("unexpected span columns: %+v", row)
	}

	// The log is filterable like any table.
	res, err = c.Exec(`SELECT seq FROM sys.query_log WHERE total_ms > 1.0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 {
		t.Errorf("filtered query log rows = %d, want 1", res.Table.NumRows())
	}
}

// TestMorselStatsExposed: a parallel kernel run moves the vec counters
// through the engine registry.
func TestMorselStatsExposed(t *testing.T) {
	db := NewDB()
	db.Workers = 4
	db.MorselSize = 1024
	reg := obs.NewRegistry()
	db.EnableObs(reg)
	c := &Conn{DB: db, User: "monetdb"}

	tbl := storage.NewTable("big", storage.Schema{{Name: "i", Type: storage.TInt}})
	for i := 0; i < 100_000; i++ {
		if err := tbl.AppendRow([]any{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	before := scrape(t, reg).Value("engine_morsels_total", nil)
	if _, err := c.Exec(`SELECT count(*) AS n FROM big WHERE i % 2 = 0`); err != nil {
		t.Fatal(err)
	}
	after := scrape(t, reg)
	if got := after.Value("engine_morsels_total", nil); got <= before {
		t.Errorf("morsels total did not move: %v -> %v", before, got)
	}
	if runs := after.Value("engine_morsel_parallel_runs_total", nil) + after.Value("engine_morsel_inline_runs_total", nil); runs < 1 {
		t.Errorf("no kernel runs recorded")
	}
}
