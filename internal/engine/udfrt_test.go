package engine

import (
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/udfrt/gort"
)

// TestScalarUDFOverEmptyColumn is the zero-row regression: an operator with
// no input tuples is never invoked, so a scalar UDF over an empty column —
// even one whose body would return a single aggregate-style value — yields
// an empty column, not a broadcast length-1 result.
func TestScalarUDFOverEmptyColumn(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE empty_t (i INTEGER)`)
	mustExec(t, c, `CREATE FUNCTION const_answer(column INTEGER)
RETURNS INTEGER LANGUAGE PYTHON {
    return 42
};`)
	res := mustExec(t, c, `SELECT const_answer(i) FROM empty_t`)
	if rows := res.Table.NumRows(); rows != 0 {
		t.Fatalf("scalar UDF over empty column returned %d rows, want 0", rows)
	}
	// tuple-at-a-time agrees: zero rows in, zero calls, zero rows out
	c.DB.Mode = ModeTupleAtATime
	res = mustExec(t, c, `SELECT const_answer(i) FROM empty_t`)
	if rows := res.Table.NumRows(); rows != 0 {
		t.Fatalf("tuple mode over empty column returned %d rows, want 0", rows)
	}
	// a constant call without table data still returns its single row
	c.DB.Mode = ModeOperatorAtATime
	res = mustExec(t, c, `SELECT const_answer(7)`)
	if rows := res.Table.NumRows(); rows != 1 {
		t.Fatalf("constant call returned %d rows, want 1", rows)
	}
}

// TestGoUDFThroughSQL drives the native GO runtime through the full SQL
// path: registration, columnar call, constant broadcast, tuple-at-a-time
// mode and the empty-input shortcut.
func TestGoUDFThroughSQL(t *testing.T) {
	c := newTestConn()
	if err := c.DB.RegisterGoUDF("go_scale", func(x []int64, f int64) []int64 {
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = v * f
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gort.Unregister("go_scale") })
	mustExec(t, c, `CREATE TABLE nums (i INTEGER)`)
	mustExec(t, c, `INSERT INTO nums VALUES (1), (2), (3)`)

	res := mustExec(t, c, `SELECT go_scale(i, 10) AS s FROM nums`)
	if got := intCol(t, res.Table, "s"); len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("go_scale: %v", got)
	}

	c.DB.Mode = ModeTupleAtATime
	res = mustExec(t, c, `SELECT go_scale(i, 2) AS s FROM nums`)
	if got := intCol(t, res.Table, "s"); len(got) != 3 || got[1] != 4 {
		t.Fatalf("tuple-mode go_scale: %v", got)
	}
	c.DB.Mode = ModeOperatorAtATime

	mustExec(t, c, `CREATE TABLE empty_n (i INTEGER)`)
	res = mustExec(t, c, `SELECT go_scale(i, 10) FROM empty_n`)
	if rows := res.Table.NumRows(); rows != 0 {
		t.Fatalf("empty input gave %d rows", rows)
	}
}

// TestGoTableUDFThroughSQL: a multi-column native function is a table
// function usable in FROM.
func TestGoTableUDFThroughSQL(t *testing.T) {
	c := newTestConn()
	if err := c.DB.RegisterGoUDF("go_stats", func(x []int64) (int64, int64) {
		lo, hi := x[0], x[0]
		for _, v := range x {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return lo, hi
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gort.Unregister("go_stats") })
	mustExec(t, c, `CREATE TABLE vals (i INTEGER)`)
	mustExec(t, c, `INSERT INTO vals VALUES (5), (1), (9)`)
	res := mustExec(t, c, `SELECT * FROM go_stats((SELECT i FROM vals))`)
	lo := intCol(t, res.Table, "col1")
	hi := intCol(t, res.Table, "col2")
	if len(lo) != 1 || lo[0] != 1 || hi[0] != 9 {
		t.Fatalf("go_stats: lo=%v hi=%v", lo, hi)
	}
}

// TestCreateFunctionGoLanguage: CREATE FUNCTION ... LANGUAGE GO binds the
// declared signature to a pre-registered symbol named in the body, and
// unknown languages are rejected at CREATE with the registered set.
func TestCreateFunctionLanguageDispatch(t *testing.T) {
	c := newTestConn()
	if err := gort.Register("sqtest_impl", func(x []int64) []int64 {
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = v * v
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gort.Unregister("sqtest_impl") })
	mustExec(t, c, `CREATE FUNCTION squared(x INTEGER) RETURNS INTEGER LANGUAGE GO {
    sqtest_impl
};`)
	mustExec(t, c, `CREATE TABLE sq_t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO sq_t VALUES (2), (3)`)
	res := mustExec(t, c, `SELECT squared(i) AS s FROM sq_t`)
	if got := intCol(t, res.Table, "s"); got[0] != 4 || got[1] != 9 {
		t.Fatalf("squared: %v", got)
	}

	err := execErr(t, c, `CREATE FUNCTION f(x INTEGER) RETURNS INTEGER LANGUAGE FORTRAN { 1 };`)
	if !strings.Contains(err.Error(), "FORTRAN") || !strings.Contains(err.Error(), "PYTHON") {
		t.Fatalf("unknown-language error should list runtimes: %v", err)
	}
}

// TestGoUDFErrorAndInvalidation: runtime errors surface with the UDF's
// name, and CREATE OR REPLACE invalidates the compiled-callable cache.
func TestGoUDFErrorAndInvalidation(t *testing.T) {
	c := newTestConn()
	if err := c.DB.RegisterGoUDF("go_trouble", func(x []int64) ([]int64, error) {
		return nil, storage.NewColumn("", storage.TInt).AppendValue(struct{}{})
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gort.Unregister("go_trouble") })
	mustExec(t, c, `CREATE TABLE tr_t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO tr_t VALUES (1)`)
	_, err := c.Exec(`SELECT go_trouble(i) FROM tr_t`)
	if err == nil || !strings.Contains(err.Error(), "go_trouble") {
		t.Fatalf("error should carry the UDF name: %v", err)
	}
	// replace the Python way: the cache must recompile under the new body
	mustExec(t, c, `CREATE OR REPLACE FUNCTION go_trouble(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return x
};`)
	res := mustExec(t, c, `SELECT go_trouble(i) AS v FROM tr_t`)
	if got := intCol(t, res.Table, "v"); got[0] != 1 {
		t.Fatalf("replaced UDF: %v", got)
	}
}
