package engine

// Differential tests of the vectorized core against the retained scalar
// reference evaluator: random columns across all five storage types
// (NULL-dense, empty, length-1 broadcast) through every kernel, full
// random queries through both SELECT pipelines, regression tests proving
// results are identical with and without selection vectors, and a
// morsel-parallel stress test meant to run under -race.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/storage"
)

// refConn returns a connection routed through the scalar reference.
func refTestConn() *Conn {
	c := newTestConn()
	c.DB.ScalarRef = true
	return c
}

// randColumn generates a random column: typ, n rows, nullDensity in
// [0,1]. Int values stay small enough that float64 promotion is exact.
func randColumn(rng *rand.Rand, typ storage.Type, n int, nullDensity float64) *storage.Column {
	col := storage.NewColumn("", typ)
	for i := 0; i < n; i++ {
		if rng.Float64() < nullDensity {
			col.AppendNull()
			continue
		}
		switch typ {
		case storage.TInt:
			col.AppendInt(rng.Int63n(41) - 20) // includes 0 for div-by-zero paths
		case storage.TFloat:
			col.AppendFloat(float64(rng.Int63n(2001)-1000) / 8)
		case storage.TStr:
			col.AppendStr(string(rune('a' + rng.Intn(5))))
		case storage.TBool:
			col.AppendBool(rng.Intn(2) == 0)
		case storage.TBlob:
			b := make([]byte, rng.Intn(4))
			rng.Read(b)
			col.AppendBlob(b)
		}
	}
	return col
}

func colsSemanticallyEqual(a, b *storage.Column) error {
	if a.Typ != b.Typ {
		return fmt.Errorf("type %s vs %s", a.Typ, b.Typ)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("length %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		an, bn := a.IsNull(i), b.IsNull(i)
		if an != bn {
			return fmt.Errorf("row %d: null %v vs %v", i, an, bn)
		}
		if an {
			// NULL rows must carry zero values in the raw vectors: the
			// zero-copy GO-UDF boundary and the scalar reference's
			// AppendNull both guarantee it
			for which, c := range map[string]*storage.Column{"a": a, "b": b} {
				if !rawZeroAt(c, i) {
					return fmt.Errorf("row %d (%s): non-zero value under NULL", i, which)
				}
			}
			continue
		}
		av, bv := a.Value(i), b.Value(i)
		if a.Typ == storage.TFloat {
			af, bf := av.(float64), bv.(float64)
			if af != bf && !(math.IsNaN(af) && math.IsNaN(bf)) {
				return fmt.Errorf("row %d: %v vs %v", i, af, bf)
			}
			continue
		}
		if a.Typ == storage.TBlob {
			if string(av.([]byte)) != string(bv.([]byte)) {
				return fmt.Errorf("row %d: blob mismatch", i)
			}
			continue
		}
		if av != bv {
			return fmt.Errorf("row %d: %v vs %v", i, av, bv)
		}
	}
	return nil
}

func rawZeroAt(c *storage.Column, i int) bool {
	switch c.Typ {
	case storage.TInt:
		return c.Ints[i] == 0
	case storage.TFloat:
		return c.Flts[i] == 0
	case storage.TStr:
		return c.Strs[i] == ""
	case storage.TBool:
		return !c.Bools[i]
	case storage.TBlob:
		return len(c.Blobs[i]) == 0
	default:
		return true
	}
}

func tablesSemanticallyEqual(a, b *storage.Table) error {
	if len(a.Cols) != len(b.Cols) {
		return fmt.Errorf("columns %d vs %d", len(a.Cols), len(b.Cols))
	}
	for i := range a.Cols {
		if a.Cols[i].Name != b.Cols[i].Name {
			return fmt.Errorf("col %d: name %q vs %q", i, a.Cols[i].Name, b.Cols[i].Name)
		}
		if err := colsSemanticallyEqual(a.Cols[i], b.Cols[i]); err != nil {
			return fmt.Errorf("col %s: %v", a.Cols[i].Name, err)
		}
	}
	return nil
}

// TestBinaryKernelsAgreeWithScalarReference drives every binary operator
// over random operand pairs — all five storage types, empty columns,
// length-1 broadcast on either side, NULL-dense and NULL-free — through
// the vectorized kernels and the retained scalar reference, requiring
// identical columns or identical errors.
func TestBinaryKernelsAgreeWithScalarReference(t *testing.T) {
	vecC, refC := newTestConn(), refTestConn()
	ops := []string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "||"}
	types := []storage.Type{storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob}
	shapes := [][2]int{{64, 64}, {1, 64}, {64, 1}, {1, 1}, {0, 0}}
	densities := []float64{0, 0.3, 1}
	rng := rand.New(rand.NewSource(7))
	for _, op := range ops {
		for _, lt := range types {
			for _, rt := range types {
				for _, sh := range shapes {
					for _, den := range densities {
						l := randColumn(rng, lt, sh[0], den)
						r := randColumn(rng, rt, sh[1], den)
						gotV, errV := vecC.evalBinary(op, l, r)
						gotR, errR := refC.evalBinary(op, l, r)
						tag := fmt.Sprintf("%s %s %s shape=%v nulls=%v", lt, op, rt, sh, den)
						if (errV == nil) != (errR == nil) {
							t.Fatalf("%s: error mismatch vec=%v ref=%v", tag, errV, errR)
						}
						if errV != nil {
							if errV.Error() != errR.Error() {
								t.Fatalf("%s: error text %q vs %q", tag, errV, errR)
							}
							continue
						}
						if err := colsSemanticallyEqual(gotV, gotR); err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
					}
				}
			}
		}
	}
}

// TestUnaryKernelsAgreeWithScalarReference covers unary minus and NOT.
func TestUnaryKernelsAgreeWithScalarReference(t *testing.T) {
	vecC, refC := newTestConn(), refTestConn()
	rng := rand.New(rand.NewSource(11))
	for _, op := range []string{"-", "NOT"} {
		for _, typ := range []storage.Type{storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob} {
			for _, n := range []int{0, 1, 77} {
				for _, den := range []float64{0, 0.4, 1} {
					x := randColumn(rng, typ, n, den)
					gotV, errV := vecC.evalUnary(op, x)
					gotR, errR := refC.evalUnary(op, x)
					tag := fmt.Sprintf("%s %s n=%d nulls=%v", op, typ, n, den)
					if (errV == nil) != (errR == nil) {
						t.Fatalf("%s: error mismatch vec=%v ref=%v", tag, errV, errR)
					}
					if errV != nil {
						if errV.Error() != errR.Error() {
							t.Fatalf("%s: error text %q vs %q", tag, errV, errR)
						}
						continue
					}
					if err := colsSemanticallyEqual(gotV, gotR); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
				}
			}
		}
	}
}

// seedRandomTable creates and fills the same random table in both
// databases.
func seedRandomTable(t *testing.T, rng *rand.Rand, conns []*Conn, rows int, nullDensity float64) {
	t.Helper()
	cols := []*storage.Column{
		randColumn(rng, storage.TInt, rows, nullDensity),
		randColumn(rng, storage.TInt, rows, nullDensity),
		randColumn(rng, storage.TFloat, rows, nullDensity),
		randColumn(rng, storage.TStr, rows, nullDensity),
		randColumn(rng, storage.TBool, rows, nullDensity),
	}
	names := []string{"i", "j", "f", "s", "b"}
	for ci, name := range names {
		cols[ci].Name = name
	}
	for _, c := range conns {
		tbl := &storage.Table{Name: "t"}
		for _, col := range cols {
			tbl.Cols = append(tbl.Cols, col.Clone())
		}
		if err := c.DB.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
}

var differentialQueries = []string{
	// WHERE fast path (fused compare-select), generic predicates, NULLs
	`SELECT i FROM t WHERE i > 3`,
	`SELECT i, f FROM t WHERE f > 12.5 AND i < 10`,
	`SELECT * FROM t WHERE s = 'c'`,
	`SELECT i FROM t WHERE 5 > i`,
	`SELECT i FROM t WHERE i + j > 0`,
	`SELECT i FROM t WHERE NOT b`,
	`SELECT i FROM t WHERE s IS NOT NULL AND b`,
	`SELECT i FROM t WHERE i IS NULL`,
	`SELECT i FROM t WHERE i > NULL`,
	// projection expressions through every kernel family
	`SELECT i + j AS a, i - j AS b2, i * j AS c, i * 2 AS d FROM t`,
	`SELECT f / 2.0 AS h, -i AS n1, i % 7 AS m FROM t WHERE i <> 0`,
	`SELECT i = j AS e, i < j AS lt, f >= 10.0 AS ge FROM t`,
	`SELECT s || '!' AS sx, b AND i > 0 AS ab, b OR f > 0.0 AS ob FROM t`,
	`SELECT CAST(i AS DOUBLE) AS fd, CAST(f AS INTEGER) AS fi FROM t`,
	`SELECT ABS(i) AS ai, SQRT(ABS(f)) AS sf, LENGTH(s) AS ls, UPPER(s) AS us FROM t`,
	`SELECT ROUND(f, 1) AS r1 FROM t`,
	// aggregates: ungrouped (selection consumed directly) and grouped
	`SELECT COUNT(*) AS n, COUNT(i) AS ni, SUM(i) AS si, AVG(f) AS af FROM t WHERE i > 0`,
	`SELECT MIN(i) AS mi, MAX(f) AS mf, MIN(s) AS ms, MAX(b) AS mb FROM t`,
	`SELECT SUM(i) + COUNT(*) AS x FROM t WHERE f < 50.0`,
	`SELECT SUM(i * 2) AS s2, AVG(i + j) AS aij FROM t`,
	`SELECT s, COUNT(*) AS n, SUM(i) AS si FROM t GROUP BY s`,
	`SELECT s, b, AVG(f) AS af FROM t GROUP BY s, b`,
	`SELECT i % 3 AS g3, COUNT(*) AS n FROM t WHERE i IS NOT NULL AND i >= 0 GROUP BY i % 3`,
	`SELECT s, COUNT(*) AS n FROM t GROUP BY s HAVING COUNT(*) > 2`,
	`SELECT COUNT(*) AS n FROM t WHERE i > 1000`,
	`SELECT SUM(i) AS si FROM t WHERE i > 1000`,
	// ORDER BY, LIMIT, DISTINCT on top of selections
	`SELECT i, s FROM t WHERE i > 0 ORDER BY i DESC, s LIMIT 5`,
	`SELECT i FROM t WHERE b ORDER BY f LIMIT 3`,
	`SELECT DISTINCT s FROM t`,
	`SELECT DISTINCT s, b FROM t WHERE i > 0`,
	`SELECT s, COUNT(*) AS n FROM t GROUP BY s ORDER BY n DESC, s LIMIT 2`,
	// NaN-producing comparisons (compareAt treats NaN as cmp==0, so
	// NaN = x / <= / >= are TRUE; the kernels must reproduce that)
	`SELECT COUNT(*) AS n FROM t WHERE SQRT(f) = 2.0`,
	`SELECT COUNT(*) AS n FROM t WHERE SQRT(f) <> 2.0`,
	`SELECT SQRT(f) <= 1.0 AS le, SQRT(f) >= 1.0 AS ge, SQRT(f) < 1.0 AS lt FROM t`,
	`SELECT MIN(SQRT(f)) AS mn, MAX(SQRT(f)) AS mx FROM t`,
	// projection aliasing: shared views, duplicate and renamed bare refs
	`SELECT i AS a, i AS b2, i + 1 AS c FROM t WHERE i > 0`,
	`SELECT *, i + 1 AS next FROM t WHERE i > 0`,
	// subqueries and FROM-less
	`SELECT (SELECT COUNT(*) FROM t) AS n`,
	`SELECT i FROM (SELECT i FROM t WHERE i > 0) WHERE i < 10`,
	`SELECT 1 + 2 AS three`,
	// constant predicates
	`SELECT i FROM t WHERE 1 = 1 LIMIT 4`,
	`SELECT i FROM t WHERE 1 = 2`,
	// errors must match too
	`SELECT i / 0 FROM t`,
	`SELECT i % 0 FROM t`,
	`SELECT i + s FROM t`,
	`SELECT i < s FROM t`,
	`SELECT -s FROM t`,
}

// TestQueriesAgreeWithScalarReference runs the differential query corpus
// against both pipelines over random tables (dense and NULL-heavy) and
// requires identical result tables or identical errors — the regression
// proof that selection vectors, typed grouping and the kernels change
// nothing semantically.
func TestQueriesAgreeWithScalarReference(t *testing.T) {
	for _, tc := range []struct {
		name        string
		rows        int
		nullDensity float64
	}{
		{"dense", 200, 0},
		{"null-mixed", 150, 0.35},
		{"all-null", 40, 1},
		{"empty", 0, 0},
		{"one-row", 1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.rows) + 99))
			vecC, refC := newTestConn(), refTestConn()
			seedRandomTable(t, rng, []*Conn{vecC, refC}, tc.rows, tc.nullDensity)
			for _, q := range differentialQueries {
				gotV, errV := vecC.Exec(q)
				gotR, errR := refC.Exec(q)
				if (errV == nil) != (errR == nil) {
					t.Fatalf("%s: error mismatch vec=%v ref=%v", q, errV, errR)
				}
				if errV != nil {
					if errV.Error() != errR.Error() {
						t.Fatalf("%s: error text %q vs %q", q, errV, errR)
					}
					continue
				}
				if err := tablesSemanticallyEqual(gotV.Table, gotR.Table); err != nil {
					t.Fatalf("%s: %v", q, err)
				}
			}
		})
	}
}

// TestSelectionVectorRegression is the satellite regression: WHERE and
// LIMIT produce identical results with selection vectors (vectorized
// path) and without them (scalar path's immediate gather / identity-index
// copy), including the interaction of both.
func TestSelectionVectorRegression(t *testing.T) {
	vecC, refC := newTestConn(), refTestConn()
	for _, c := range []*Conn{vecC, refC} {
		mustExec(t, c, `CREATE TABLE r (i INTEGER, s STRING)`)
		mustExec(t, c, `INSERT INTO r VALUES (1,'a'), (2,'b'), (3,NULL), (4,'d'), (5,'e'), (6,'f')`)
	}
	for _, q := range []string{
		`SELECT i, s FROM r WHERE i > 2`,
		`SELECT i FROM r WHERE i > 2 LIMIT 2`,
		`SELECT i FROM r LIMIT 3`,
		`SELECT i FROM r LIMIT 0`,
		`SELECT * FROM r WHERE s IS NOT NULL LIMIT 2`,
		`SELECT COUNT(*) AS n FROM r WHERE i >= 4`,
		`SELECT s FROM r WHERE i % 2 = 0 ORDER BY i DESC LIMIT 1`,
	} {
		gotV, errV := vecC.Exec(q)
		gotR, errR := refC.Exec(q)
		if errV != nil || errR != nil {
			t.Fatalf("%s: vec=%v ref=%v", q, errV, errR)
		}
		if err := tablesSemanticallyEqual(gotV.Table, gotR.Table); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// LIMIT slicing must not leave the result mutable into the source
	r := mustExec(t, vecC, `SELECT i FROM r LIMIT 2`)
	if got := intCol(t, r.Table, "i"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("limit slice: %v", got)
	}
}

// TestBlobGroupingAgrees pins the blob-key fix: DISTINCT and GROUP BY
// over blob columns key on content in both pipelines (the historical
// formatted key "<blob NB>" collapsed distinct same-length blobs).
func TestBlobGroupingAgrees(t *testing.T) {
	vecC, refC := newTestConn(), refTestConn()
	bl := storage.NewColumn("bl", storage.TBlob)
	g := storage.NewColumn("g", storage.TInt)
	for _, row := range []struct {
		b []byte
		v int64
	}{
		{[]byte("abc"), 1}, {[]byte("xyz"), 2}, {[]byte("abc"), 3}, {nil, 4}, {[]byte("ab\x01c"), 5},
	} {
		if row.b == nil {
			bl.AppendNull()
		} else {
			bl.AppendBlob(row.b)
		}
		g.AppendInt(row.v)
	}
	for _, c := range []*Conn{vecC, refC} {
		if err := c.DB.RegisterTable(&storage.Table{Name: "bt", Cols: []*storage.Column{bl.Clone(), g.Clone()}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`SELECT DISTINCT bl FROM bt`,
		`SELECT bl, COUNT(*) AS n, SUM(g) AS sg FROM bt GROUP BY bl`,
	} {
		gotV, errV := vecC.Exec(q)
		gotR, errR := refC.Exec(q)
		if errV != nil || errR != nil {
			t.Fatalf("%s: vec=%v ref=%v", q, errV, errR)
		}
		if err := tablesSemanticallyEqual(gotV.Table, gotR.Table); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// distinct same-length blobs must stay distinct: abc, xyz, NULL, ab\x01c
		if gotV.Table.NumRows() != 4 {
			t.Fatalf("%s: %d groups, want 4", q, gotV.Table.NumRows())
		}
	}
}

// TestMorselParallelExecution forces many small morsels across workers
// over a table large enough to split, checking that parallel results
// match serial ones exactly for int aggregation and within float
// tolerance for float sums, and that a native GO UDF batch split across
// morsels stitches back losslessly. Run with -race in CI.
func TestMorselParallelExecution(t *testing.T) {
	const rows = 40_000
	serial, parallel := newTestConn(), newTestConn()
	serial.DB.Workers = 1
	parallel.DB.Workers = 8
	parallel.DB.MorselSize = 512
	rng := rand.New(rand.NewSource(21))
	seedRandomTable(t, rng, []*Conn{serial, parallel}, rows, 0.1)
	for _, c := range []*Conn{serial, parallel} {
		if err := c.DB.RegisterGoUDFElementwise("vsquare", func(x []int64) []int64 {
			out := make([]int64, len(x))
			for i, v := range x {
				out[i] = v * v
			}
			return out
		}); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{
		`SELECT COUNT(*) AS n, SUM(i) AS si, MIN(i) AS mi, MAX(i) AS ma FROM t WHERE i > 0`,
		`SELECT i + j AS a FROM t WHERE i > 5 LIMIT 10`,
		`SELECT s, COUNT(*) AS n, SUM(i) AS si FROM t GROUP BY s ORDER BY s`,
		`SELECT SUM(vsquare(i)) AS sq FROM t WHERE i IS NOT NULL`,
		`SELECT DISTINCT s FROM t WHERE b`,
	}
	for _, q := range queries {
		gotS, errS := serial.Exec(q)
		gotP, errP := parallel.Exec(q)
		if errS != nil || errP != nil {
			t.Fatalf("%s: serial=%v parallel=%v", q, errS, errP)
		}
		if err := tablesSemanticallyEqual(gotS.Table, gotP.Table); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	// float sums may associate differently across morsels: tolerance
	gotS, _ := serial.Exec(`SELECT SUM(f) AS sf, AVG(f) AS af FROM t WHERE f > 0.0`)
	gotP, _ := parallel.Exec(`SELECT SUM(f) AS sf, AVG(f) AS af FROM t WHERE f > 0.0`)
	for ci := range gotS.Table.Cols {
		a, b := gotS.Table.Cols[ci].Flts[0], gotP.Table.Cols[ci].Flts[0]
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("float aggregate diverged: %v vs %v", a, b)
		}
	}

	// concurrent queries from many goroutines while kernels spawn their
	// own workers — the -race target
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn := &Conn{DB: parallel.DB, User: "monetdb", Password: "monetdb"}
			for k := 0; k < 4; k++ {
				q := queries[(g+k)%len(queries)]
				if _, err := conn.Exec(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelUDFBroadcastFallback: an aggregate-style GO UDF (column in,
// scalar out) split into morsels must transparently fall back to one
// whole-batch call instead of stitching per-morsel scalars.
func TestParallelUDFBroadcastFallback(t *testing.T) {
	c := newTestConn()
	c.DB.Workers = 4
	c.DB.MorselSize = 64
	if err := c.DB.RegisterGoUDFElementwise("vtotal", func(x []int64) int64 {
		var s int64
		for _, v := range x {
			s += v
		}
		return s
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `CREATE TABLE n1 (i INTEGER)`)
	var sb []byte
	sb = append(sb, `INSERT INTO n1 VALUES `...)
	want := int64(0)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb = append(sb, ',')
		}
		sb = append(sb, fmt.Sprintf("(%d)", i)...)
		want += int64(i)
	}
	mustExec(t, c, string(sb))
	r := mustExec(t, c, `SELECT vtotal(i) AS s FROM n1`)
	if got := r.Table.Cols[0].Ints[0]; got != want {
		t.Fatalf("vtotal = %d, want %d", got, want)
	}
	// MorselSize=1 must never split: a per-morsel scalar result would be
	// indistinguishable from an elementwise one-row result
	c.DB.MorselSize = 1
	r = mustExec(t, c, `SELECT vtotal(i) AS s FROM n1`)
	if got, rows := r.Table.Cols[0].Ints[0], r.Table.NumRows(); rows != 1 || got != want {
		t.Fatalf("vtotal with MorselSize=1 = %d over %d rows, want %d over 1", got, rows, want)
	}
}

// TestBatchDependentUDFNeverSplit: a Go UDF registered WITHOUT the
// element-wise declaration keeps whole-batch semantics under parallel
// settings — a prefix-sum over morsels would silently restart per
// morsel if the engine split it.
func TestBatchDependentUDFNeverSplit(t *testing.T) {
	c := newTestConn()
	c.DB.Workers = 4
	c.DB.MorselSize = 4
	if err := c.DB.RegisterGoUDF("prefix_sum", func(x []int64) []int64 {
		out := make([]int64, len(x))
		var run int64
		for i, v := range x {
			run += v
			out[i] = run
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, `CREATE TABLE ps (i INTEGER)`)
	mustExec(t, c, `INSERT INTO ps VALUES (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1), (1)`)
	r := mustExec(t, c, `SELECT prefix_sum(i) AS p FROM ps`)
	got := r.Table.Cols[0].Ints
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("prefix_sum restarted mid-batch: row %d = %d (full result %v)", i, v, got)
		}
	}
}

// TestParallelUDFMisalignedArgStillErrors: a columnar argument whose
// length matches the morsel size but not the batch must error exactly
// like the whole-batch call — the morsel split must not silently
// re-broadcast it per morsel.
func TestParallelUDFMisalignedArgStillErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c := newTestConn()
		c.DB.Workers = workers
		c.DB.MorselSize = 64
		if err := c.DB.RegisterGoUDFElementwise("padd", func(x, y []int64) []int64 {
			out := make([]int64, len(x))
			for i := range x {
				out[i] = x[i] + y[i%len(y)]
			}
			return out
		}); err != nil {
			t.Fatal(err)
		}
		big := storage.NewColumn("i", storage.TInt)
		for i := 0; i < 128; i++ {
			big.AppendInt(int64(i))
		}
		small := storage.NewColumn("j", storage.TInt)
		for i := 0; i < 64; i++ {
			small.AppendInt(int64(i))
		}
		if err := c.DB.RegisterTable(&storage.Table{Name: "big128", Cols: []*storage.Column{big}}); err != nil {
			t.Fatal(err)
		}
		if err := c.DB.RegisterTable(&storage.Table{Name: "small64", Cols: []*storage.Column{small}}); err != nil {
			t.Fatal(err)
		}
		_, err := c.Exec(`SELECT padd(i, (SELECT j FROM small64)) FROM big128`)
		if err == nil {
			t.Fatalf("workers=%d: mis-sized columnar argument must error, got rows", workers)
		}
	}
}

// TestScalarRefModeStillServesUDFs guards that the reference pipeline
// composes with UDF execution (the benchmark's scalar leg runs whole
// queries, UDFs included).
func TestScalarRefModeStillServesUDFs(t *testing.T) {
	c := refTestConn()
	mustExec(t, c, `CREATE TABLE m (i INTEGER)`)
	mustExec(t, c, `INSERT INTO m VALUES (1), (2), (3)`)
	if err := c.DB.RegisterGoUDF("sq_ref", func(x []int64) []int64 {
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = v * v
		}
		return out
	}); err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, c, `SELECT SUM(sq_ref(i)) AS s FROM m`)
	if got := r.Table.Cols[0].Ints[0]; got != 14 {
		t.Fatalf("sum of squares = %d", got)
	}
}

// FuzzBinaryKernelAgreement fuzzes operand bytes into int columns and
// checks vectorized-vs-reference agreement for the fuzzer-chosen op.
func FuzzBinaryKernelAgreement(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3}, []byte{4, 5, 6})
	f.Add(uint8(3), []byte{0, 0}, []byte{0, 9})
	f.Add(uint8(7), []byte{255}, []byte{1, 2, 3, 4})
	ops := []string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
	vecC, refC := newTestConn(), refTestConn()
	toCol := func(bs []byte) *storage.Column {
		col := storage.NewColumn("", storage.TInt)
		for _, b := range bs {
			if b == 255 {
				col.AppendNull()
			} else {
				col.AppendInt(int64(b) - 64)
			}
		}
		return col
	}
	f.Fuzz(func(t *testing.T, opByte uint8, lb, rb []byte) {
		op := ops[int(opByte)%len(ops)]
		l, r := toCol(lb), toCol(rb)
		gotV, errV := vecC.evalBinary(op, l, r)
		gotR, errR := refC.evalBinary(op, l, r)
		if (errV == nil) != (errR == nil) {
			t.Fatalf("%s: error mismatch vec=%v ref=%v", op, errV, errR)
		}
		if errV != nil {
			if errV.Error() != errR.Error() {
				t.Fatalf("%s: error text %q vs %q", op, errV, errR)
			}
			return
		}
		if err := colsSemanticallyEqual(gotV, gotR); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	})
}
