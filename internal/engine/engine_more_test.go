package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func TestOrderByMultipleKeys(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (g STRING, i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES ('b', 1), ('a', 2), ('b', 3), ('a', 1)`)
	r := mustExec(t, c, `SELECT g, i FROM t ORDER BY g, i DESC`)
	g, _ := r.Table.Column("g")
	i, _ := r.Table.Column("i")
	if g.Strs[0] != "a" || i.Ints[0] != 2 || g.Strs[2] != "b" || i.Ints[2] != 3 {
		t.Fatalf("order: %v %v", g.Strs, i.Ints)
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (a STRING, b STRING, v INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES ('x','p',1), ('x','q',2), ('x','p',3), ('y','p',4)`)
	r := mustExec(t, c, `SELECT a, b, SUM(v) AS s FROM t GROUP BY a, b ORDER BY a, b`)
	if r.Table.NumRows() != 3 {
		t.Fatalf("groups: %d", r.Table.NumRows())
	}
	s, _ := r.Table.Column("s")
	if s.Ints[0] != 4 || s.Ints[1] != 2 || s.Ints[2] != 4 {
		t.Fatalf("sums: %v", s.Ints)
	}
}

func TestStringConcatAndScalarFunctions(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (s STRING, f DOUBLE)`)
	mustExec(t, c, `INSERT INTO t VALUES ('ab', 2.25), (NULL, -9.0)`)
	r := mustExec(t, c, `SELECT s || '!' AS e, UPPER(s) AS u, LOWER('ABC') AS l, LENGTH(s) AS n,
		ABS(f) AS a, ROUND(f, 1) AS rr, SQRT(ABS(f)) AS q, FLOOR(f) AS fl, CEIL(f) AS ce FROM t`)
	e, _ := r.Table.Column("e")
	if e.Strs[0] != "ab!" || !e.IsNull(1) {
		t.Fatalf("concat: %v nulls=%v", e.Strs, e.Nulls)
	}
	u, _ := r.Table.Column("u")
	if u.Strs[0] != "AB" {
		t.Fatalf("upper: %v", u.Strs)
	}
	n, _ := r.Table.Column("n")
	if n.Ints[0] != 2 || !n.IsNull(1) {
		t.Fatalf("length: %v", n.Ints)
	}
	a, _ := r.Table.Column("a")
	if a.Flts[1] != 9.0 {
		t.Fatalf("abs: %v", a.Flts)
	}
	q, _ := r.Table.Column("q")
	if q.Flts[0] != 1.5 {
		t.Fatalf("sqrt: %v", q.Flts)
	}
	fl, _ := r.Table.Column("fl")
	ce, _ := r.Table.Column("ce")
	if fl.Flts[0] != 2 || ce.Flts[0] != 3 {
		t.Fatalf("floor/ceil: %v %v", fl.Flts, ce.Flts)
	}
}

func TestCastErrorsAndArity(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (s STRING)`)
	mustExec(t, c, `INSERT INTO t VALUES ('not-a-number')`)
	execErr(t, c, `SELECT CAST(s AS INTEGER) FROM t`)
	execErr(t, c, `SELECT ABS('x')`)
	execErr(t, c, `SELECT ABS(1, 2)`)
	execErr(t, c, `SELECT LENGTH(1)`)
}

func TestUDFStepLimit(t *testing.T) {
	c := newTestConn()
	c.DB.MaxUDFSteps = 10_000
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `CREATE FUNCTION spin(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    n = 0
    while True:
        n += 1
    return n
}`)
	err := execErr(t, c, `SELECT spin(i) FROM t`)
	if !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err: %v", err)
	}
}

// TestLoopbackWrites: a UDF can modify the database through _conn — the
// loopback connection is a full SQL channel, as in MonetDB/Python.
func TestLoopbackWrites(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE audit (msg STRING)`)
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (5)`)
	mustExec(t, c, `CREATE FUNCTION logged_double(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    _conn.execute("INSERT INTO audit VALUES ('called')")
    out = []
    for v in x:
        out.append(v * 2)
    return out
}`)
	r := mustExec(t, c, `SELECT logged_double(i) FROM t`)
	if r.Table.Cols[0].Ints[0] != 10 {
		t.Fatalf("result: %v", r.Table.Cols[0].Ints)
	}
	r = mustExec(t, c, `SELECT COUNT(*) FROM audit`)
	if r.Table.Cols[0].Ints[0] != 1 {
		t.Fatalf("audit rows: %v", r.Table.Cols[0].Ints)
	}
}

func TestLoopbackSingleRowScalars(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE cfg (k STRING, v INTEGER)`)
	mustExec(t, c, `INSERT INTO cfg VALUES ('threshold', 42)`)
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	// one-row loopback results arrive as scalars (Listing 3 convention)
	mustExec(t, c, `CREATE FUNCTION with_cfg(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    res = _conn.execute("SELECT v FROM cfg WHERE k = 'threshold'")
    return res['v']
}`)
	r := mustExec(t, c, `SELECT with_cfg(i) FROM t`)
	if r.Table.Cols[0].Ints[0] != 42 {
		t.Fatalf("scalar loopback: %v", r.Table.Cols[0].Ints)
	}
}

func TestScalarSubqueryMustBeSingleRow(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2)`)
	execErr(t, c, `SELECT i FROM t WHERE i = (SELECT i FROM t)`)
}

func TestProjectionLengthMismatch(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, c, `CREATE FUNCTION two_rows(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return [1, 2]
}`)
	err := execErr(t, c, `SELECT two_rows(i) FROM t`)
	if !strings.Contains(err.Error(), "2 rows for 3 input rows") {
		t.Fatalf("err: %v", err)
	}
}

func TestTableUDFTupleReturn(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE FUNCTION pair() RETURNS TABLE(a INTEGER, b STRING) LANGUAGE PYTHON {
    return ([1, 2], ["x", "y"])
}`)
	r := mustExec(t, c, `SELECT * FROM pair()`)
	if r.Table.NumRows() != 2 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	b, _ := r.Table.Column("b")
	if b.Strs[1] != "y" {
		t.Fatalf("b: %v", b.Strs)
	}
}

func TestTableUDFMissingColumn(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE FUNCTION half() RETURNS TABLE(a INTEGER, b INTEGER) LANGUAGE PYTHON {
    return {'a': [1]}
}`)
	err := execErr(t, c, `SELECT * FROM half()`)
	if !strings.Contains(err.Error(), "missing column") {
		t.Fatalf("err: %v", err)
	}
}

func TestNullPropagationInArithmetic(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (NULL)`)
	r := mustExec(t, c, `SELECT i + 1 AS x, i * 2 AS y FROM t`)
	x, _ := r.Table.Column("x")
	if x.Ints[0] != 2 || !x.IsNull(1) {
		t.Fatalf("null propagation: %v %v", x.Ints, x.Nulls)
	}
}

func TestDivisionByZeroInSQL(t *testing.T) {
	c := newTestConn()
	execErr(t, c, `SELECT 1 / 0`)
	execErr(t, c, `SELECT 1.5 / 0`)
	execErr(t, c, `SELECT 1 % 0`)
}

func TestSysMetaTablesViaSQL(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE data (x INTEGER, y STRING)`)
	mustExec(t, c, `INSERT INTO data VALUES (1, 'a')`)
	r := mustExec(t, c, `SELECT name, rows FROM sys.tables`)
	if r.Table.NumRows() != 1 || r.Table.Cols[0].Strs[0] != "data" || r.Table.Cols[1].Ints[0] != 1 {
		t.Fatalf("sys.tables: %v %v", r.Table.Cols[0].Strs, r.Table.Cols[1].Ints)
	}
	r = mustExec(t, c, `SELECT COUNT(*) FROM sys.columns WHERE table_name = 'data'`)
	if r.Table.Cols[0].Ints[0] != 2 {
		t.Fatalf("sys.columns: %v", r.Table.Cols[0].Ints)
	}
}

func TestValueConversionMatrix(t *testing.T) {
	// every storage type survives the column→script→column round trip
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER, f DOUBLE, s STRING, b BOOLEAN, bl BLOB)`)
	mustExec(t, c, `INSERT INTO t VALUES (7, 2.5, 'hey', TRUE, 'bytes'), (NULL, NULL, NULL, NULL, NULL)`)
	mustExec(t, c, `CREATE FUNCTION echo(i INTEGER, f DOUBLE, s STRING, b BOOLEAN, bl BLOB)
RETURNS TABLE(i INTEGER, f DOUBLE, s STRING, b BOOLEAN, bl BLOB) LANGUAGE PYTHON {
    return {'i': i, 'f': f, 's': s, 'b': b, 'bl': bl}
}`)
	r := mustExec(t, c, `SELECT * FROM echo((SELECT i, f, s, b, bl FROM t))`)
	if r.Table.NumRows() != 2 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	for ci, want := range []storage.Type{storage.TInt, storage.TFloat, storage.TStr, storage.TBool, storage.TBlob} {
		col := r.Table.Cols[ci]
		if col.Typ != want {
			t.Fatalf("col %d type %v, want %v", ci, col.Typ, want)
		}
		if !col.IsNull(1) {
			t.Fatalf("col %d should keep NULL", ci)
		}
	}
	if r.Table.Cols[0].Ints[0] != 7 || r.Table.Cols[2].Strs[0] != "hey" ||
		string(r.Table.Cols[4].Blobs[0]) != "bytes" {
		t.Fatal("values corrupted in round trip")
	}
}

func TestUDFArityMismatch(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `CREATE FUNCTION f2(a INTEGER, b INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return a }`)
	err := execErr(t, c, `SELECT f2(i) FROM t`)
	if !strings.Contains(err.Error(), "expects 2 argument(s), got 1") {
		t.Fatalf("err: %v", err)
	}
}

func TestScalarUDFInFromClause(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE FUNCTION fortytwo() RETURNS INTEGER LANGUAGE PYTHON { return 42 }`)
	r := mustExec(t, c, `SELECT * FROM fortytwo()`)
	if r.Table.NumRows() != 1 || r.Table.Cols[0].Ints[0] != 42 {
		t.Fatalf("scalar in FROM: %+v", r.Table.Cols[0])
	}
}

func TestTableFunctionAsScalarRejected(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `CREATE FUNCTION tf() RETURNS TABLE(a INTEGER) LANGUAGE PYTHON { return [1] }`)
	err := execErr(t, c, `SELECT tf() FROM t`)
	if !strings.Contains(err.Error(), "table function") {
		t.Fatalf("err: %v", err)
	}
}

func TestEngineErrorKindsCrossLayers(t *testing.T) {
	c := newTestConn()
	if err := execErr(t, c, `SELEKT`); core.KindOf(err) != core.KindSyntax {
		t.Fatalf("syntax kind: %v", err)
	}
	if err := execErr(t, c, `SELECT * FROM nope`); core.KindOf(err) != core.KindName {
		t.Fatalf("name kind: %v", err)
	}
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	if err := execErr(t, c, `CREATE TABLE t (i INTEGER)`); core.KindOf(err) != core.KindConstraint {
		t.Fatalf("constraint kind: %v", err)
	}
}

func TestSelectDistinct(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (g STRING, i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES ('a', 1), ('a', 1), ('b', 1), ('a', 2), ('b', 1)`)
	r := mustExec(t, c, `SELECT DISTINCT g, i FROM t ORDER BY g, i`)
	if r.Table.NumRows() != 3 {
		t.Fatalf("distinct rows: %d", r.Table.NumRows())
	}
	r = mustExec(t, c, `SELECT DISTINCT g FROM t`)
	if r.Table.NumRows() != 2 {
		t.Fatalf("distinct g: %d", r.Table.NumRows())
	}
}

func TestHaving(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE sales (region STRING, amount INTEGER)`)
	mustExec(t, c, `INSERT INTO sales VALUES ('n', 10), ('n', 20), ('s', 5), ('w', 100)`)
	r := mustExec(t, c, `SELECT region, SUM(amount) AS total FROM sales GROUP BY region HAVING SUM(amount) > 20 ORDER BY region`)
	if r.Table.NumRows() != 2 {
		t.Fatalf("having groups: %d", r.Table.NumRows())
	}
	reg, _ := r.Table.Column("region")
	if reg.Strs[0] != "n" || reg.Strs[1] != "w" {
		t.Fatalf("regions: %v", reg.Strs)
	}
	// HAVING with COUNT
	r = mustExec(t, c, `SELECT region FROM sales GROUP BY region HAVING COUNT(*) >= 2`)
	if r.Table.NumRows() != 1 || r.Table.Cols[0].Strs[0] != "n" {
		t.Fatalf("count having: %+v", r.Table.Cols[0].Strs)
	}
	// HAVING without GROUP BY/aggregates is rejected
	execErr(t, c, `SELECT region FROM sales HAVING region = 'n'`)
}
