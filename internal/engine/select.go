package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/vec"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// evalSelect executes a SELECT and materializes its result table.
//
// The vectorized pipeline: WHERE produces a selection vector over the
// source (fused compare-select kernels when the predicate is
// column-vs-constant conjuncts), which projection and aggregation consume
// lazily — filtered rows materialize once per referenced column at result
// build, never as an intermediate table. LIMIT slices the result columns
// in place. DB.ScalarRef routes everything through the retained
// row-at-a-time reference instead.
func (c *Conn) evalSelect(sel *sqlparse.Select) (*storage.Table, error) {
	src, err := c.evalFrom(sel.From)
	if err != nil {
		return nil, err
	}
	if m := c.DB.metrics; m != nil && src != nil {
		m.rowsScanned.Add(uint64(src.NumRows()))
	}
	// Pipeline-stage interrupt checkpoints: an armed interrupt stops morsel
	// kernels mid-run (vec.Pol.Stop), which leaves well-formed but
	// incomplete outputs — so each stage's result must be discarded here
	// before the next stage consumes it.
	if err := c.interruptErr(); err != nil {
		return nil, err
	}

	// WHERE
	var selv []int32
	if sel.Where != nil && src != nil {
		if c.DB.ScalarRef {
			src, err = c.scalarFilter(src, sel.Where)
		} else {
			src, selv, err = c.filter(src, sel.Where)
		}
		if err != nil {
			return nil, err
		}
		if err := c.interruptErr(); err != nil {
			return nil, err
		}
	}

	var result *storage.Table
	if len(sel.GroupBy) > 0 || hasAggregate(sel.Items) {
		result, err = c.evalAggregateSelect(sel, src, selv)
	} else {
		if sel.Having != nil {
			return nil, core.Errorf(core.KindSyntax, "HAVING requires GROUP BY or aggregates")
		}
		result, err = c.project(sel, src, selv)
	}
	if err != nil {
		return nil, err
	}
	if err := c.interruptErr(); err != nil {
		return nil, err
	}

	if sel.Distinct {
		result = c.distinctRows(result)
		if err := c.interruptErr(); err != nil {
			return nil, err
		}
	}

	// ORDER BY
	if len(sel.OrderBy) > 0 {
		if err := c.orderResult(sel, result, src, selv); err != nil {
			return nil, err
		}
		if err := c.interruptErr(); err != nil {
			return nil, err
		}
	}

	// LIMIT
	if sel.Limit >= 0 && int64(result.NumRows()) > sel.Limit {
		if c.DB.ScalarRef {
			// historical LIMIT: build an identity index, copy every column
			idx := make([]int32, sel.Limit)
			for i := range idx {
				idx[i] = int32(i)
			}
			result = scalarGatherTable(result, idx)
		} else {
			// slice the result columns directly; no gather copy — but when
			// the limit keeps only a small prefix, copy it so the result
			// does not pin the full backing arrays for its lifetime
			limit := int(sel.Limit)
			if limit*2 < result.NumRows() {
				result = result.SliceRows(0, limit).Clone()
			} else {
				result = result.SliceRows(0, limit)
			}
		}
	}
	if err := c.checkBudgetRows(result.NumRows()); err != nil {
		return nil, err
	}
	if m := c.DB.metrics; m != nil {
		m.rowsReturned.Add(uint64(result.NumRows()))
	}
	return result, nil
}

// filter evaluates the WHERE clause into a selection vector (or an empty
// source table for a false constant predicate).
func (c *Conn) filter(src *storage.Table, where sqlparse.Expr) (*storage.Table, []int32, error) {
	if selv, ok, err := c.tryFilterFast(src, where); err != nil {
		return nil, nil, err
	} else if ok {
		return src, selv, nil
	}
	ctx := c.newCtx(src, nil)
	pred, err := c.evalExpr(ctx, where)
	if err != nil {
		return nil, nil, err
	}
	if pred.Len() == 1 && src.NumRows() != 1 {
		// constant predicate broadcast
		if !truthyAt(pred, 0) {
			return emptyLike(src), nil, nil
		}
		return src, nil, nil
	}
	return src, vec.SelectTruthy(c.pol(), pred), nil
}

// scalarFilter is the retained reference WHERE: evaluate the predicate
// row-at-a-time, append-grow the index list (no capacity hint — the
// historical behavior the selection vectors subsume), materialize the
// filtered table immediately through the append-based gather.
func (c *Conn) scalarFilter(src *storage.Table, where sqlparse.Expr) (*storage.Table, error) {
	ctx := c.newCtx(src, nil)
	pred, err := c.evalExpr(ctx, where)
	if err != nil {
		return nil, err
	}
	if pred.Len() == 1 && src.NumRows() != 1 {
		if !truthyAt(pred, 0) {
			return emptyLike(src), nil
		}
		return src, nil
	}
	var idx []int32
	for i := 0; i < pred.Len(); i++ {
		if truthyAt(pred, i) {
			idx = append(idx, int32(i))
		}
	}
	return scalarGatherTable(src, idx), nil
}

// fastConjunct is one WHERE conjunct of the fused filter shape:
// column <cmp> literal.
type fastConjunct struct {
	op  vec.CmpOp
	col *storage.Column
	lit *storage.Column
}

// tryFilterFast recognizes WHERE clauses that are AND-conjunctions of
// column-vs-literal comparisons and evaluates them as fused
// compare-select kernels — no intermediate boolean column — intersecting
// the conjunct selections. ok=false falls back to the generic predicate
// path without having run any kernel.
func (c *Conn) tryFilterFast(src *storage.Table, where sqlparse.Expr) ([]int32, bool, error) {
	var conjs []sqlparse.Expr
	var flatten func(e sqlparse.Expr)
	flatten = func(e sqlparse.Expr) {
		if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conjs = append(conjs, e)
	}
	flatten(where)
	// validate every conjunct's shape before running any kernel
	plan := make([]fastConjunct, 0, len(conjs))
	for _, e := range conjs {
		b, ok := e.(*sqlparse.BinaryExpr)
		if !ok || !isCmpOp(b.Op) {
			return nil, false, nil
		}
		op := cmpOpOf(b.Op)
		refE, litE := b.L, b.R
		ref, isRef := refE.(*sqlparse.ColRef)
		if !isRef {
			refE, litE = b.R, b.L
			ref, isRef = refE.(*sqlparse.ColRef)
			if !isRef {
				return nil, false, nil
			}
			op = op.Mirror()
		}
		lit, ok := c.literalColumn(litE)
		if !ok {
			return nil, false, nil
		}
		col, err := src.Column(ref.Name)
		if err != nil {
			return nil, false, nil // generic path surfaces the name error
		}
		if !vec.Fusable(col, lit) {
			return nil, false, nil
		}
		plan = append(plan, fastConjunct{op: op, col: col, lit: lit})
	}
	if len(plan) == 0 {
		return nil, false, nil
	}
	p := c.pol()
	var selv []int32
	for _, fc := range plan {
		if selv != nil && len(selv) == 0 {
			break // an empty intersection stays empty; skip the dead scans
		}
		s, handled := vec.SelectCompareConst(p, fc.op, fc.col, fc.lit)
		if !handled {
			return nil, false, nil
		}
		if selv == nil {
			selv = s
		} else {
			selv = vec.Intersect(selv, s)
		}
	}
	return selv, true, nil
}

func isCmpOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// literalColumn builds a length-1 column from a literal expression
// (optionally sign-negated) or a bound placeholder, or reports that the
// expression is not a plain literal. Bound placeholders qualify so a
// prepared filter takes the same fused compare-select kernels as its
// literal-substituted equivalent.
func (c *Conn) literalColumn(e sqlparse.Expr) (*storage.Column, bool) {
	switch e := e.(type) {
	case *sqlparse.Placeholder:
		col, err := c.bindColumn(e)
		if err != nil {
			return nil, false
		}
		return col, true
	case *sqlparse.IntLit:
		col := storage.NewColumn("", storage.TInt)
		col.AppendInt(e.Value)
		return col, true
	case *sqlparse.FloatLit:
		col := storage.NewColumn("", storage.TFloat)
		col.AppendFloat(e.Value)
		return col, true
	case *sqlparse.StrLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendStr(e.Value)
		return col, true
	case *sqlparse.BoolLit:
		col := storage.NewColumn("", storage.TBool)
		col.AppendBool(e.Value)
		return col, true
	case *sqlparse.NullLit:
		col := storage.NewColumn("", storage.TStr)
		col.AppendNull()
		return col, true
	case *sqlparse.UnaryExpr:
		if e.Op != "-" {
			return nil, false
		}
		switch x := e.X.(type) {
		case *sqlparse.IntLit:
			col := storage.NewColumn("", storage.TInt)
			col.AppendInt(-x.Value)
			return col, true
		case *sqlparse.FloatLit:
			col := storage.NewColumn("", storage.TFloat)
			col.AppendFloat(-x.Value)
			return col, true
		}
	}
	return nil, false
}

// evalFrom materializes the FROM source, or nil for FROM-less selects.
func (c *Conn) evalFrom(from sqlparse.FromClause) (*storage.Table, error) {
	switch f := from.(type) {
	case nil:
		return nil, nil
	case *sqlparse.FromTable:
		// sys.query_log is engine-level (it reads the observability ring,
		// which storage cannot depend on), unlike the catalog's sys.* meta
		// tables.
		if t, ok := c.queryLogTable(f.Name); ok {
			return t, nil
		}
		t, err := c.DB.cat.Table(f.Name)
		if err != nil {
			return nil, err
		}
		return t, nil
	case *sqlparse.FromSelect:
		return c.evalSelect(f.Sel)
	case *sqlparse.FromFunc:
		return c.evalTableFunc(f.Call)
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported FROM clause %T", from)
	}
}

// evalTableFunc executes a table-valued function in FROM: sys_extract or a
// Python table UDF.
func (c *Conn) evalTableFunc(call *sqlparse.FuncCall) (*storage.Table, error) {
	if strings.EqualFold(call.Name, extractFuncName) {
		return c.evalExtract(call)
	}
	def, err := c.DB.cat.Function(call.Name)
	if err != nil {
		return nil, err
	}
	ctx := c.newCtx(nil, nil)
	argCols, isColumn, err := c.udfArgColumns(ctx, call.Args)
	if err != nil {
		return nil, err
	}
	return c.callTableUDF(def, argCols, isColumn)
}

// project evaluates the projection list of a non-aggregate select. Bare
// column references materialize straight off the selection vector; other
// expressions evaluate over the lazily-gathered view.
func (c *Conn) project(sel *sqlparse.Select, src *storage.Table, selv []int32) (*storage.Table, error) {
	ctx := c.newCtx(src, selv)
	out := &storage.Table{Name: "result"}
	usedViews := map[*storage.Column]bool{}
	for i, item := range sel.Items {
		if item.Star {
			if src == nil {
				return nil, core.Errorf(core.KindSyntax, "SELECT * requires a FROM clause")
			}
			for _, col := range src.Cols {
				if selv != nil {
					v := ctx.view(col)
					if usedViews[v] {
						v = v.Clone()
					}
					usedViews[v] = true
					out.Cols = append(out.Cols, v)
				} else {
					out.Cols = append(out.Cols, col.Clone())
				}
			}
			continue
		}
		var named *storage.Column
		if ref, ok := item.Expr.(*sqlparse.ColRef); ok && src != nil {
			base, err := src.Column(ref.Name)
			if err != nil {
				return nil, err
			}
			if selv != nil {
				// reuse the context's memoized gather (an expression item
				// referencing the same column shares it); clone when the
				// same view already sits in the result or an alias would
				// rename the shared object
				v := ctx.view(base)
				if usedViews[v] || itemName(item, i) != v.Name {
					v = v.Clone()
				}
				usedViews[v] = true
				named = v
			} else {
				named = base.Clone()
			}
		} else {
			col, err := c.evalExpr(ctx, item.Expr)
			if err != nil {
				return nil, err
			}
			if _, isSub := item.Expr.(*sqlparse.Subquery); isSub {
				// subquery results alias the subselect's table; copy
				col = col.Clone()
			}
			named = col
		}
		named.Name = itemName(item, i)
		out.Cols = append(out.Cols, named)
	}
	return broadcastColumns(out)
}

// broadcastColumns reconciles column lengths: length-1 columns broadcast to
// the longest column (the operator-at-a-time convention that lets a scalar
// UDF result or constant sit beside full columns).
func broadcastColumns(t *storage.Table) (*storage.Table, error) {
	maxLen := 0
	for _, c := range t.Cols {
		if c.Len() > maxLen {
			maxLen = c.Len()
		}
	}
	for i, c := range t.Cols {
		switch {
		case c.Len() == maxLen:
		case c.Len() == 1:
			t.Cols[i] = c.BroadcastTo(maxLen)
		default:
			return nil, core.Errorf(core.KindConstraint,
				"projection columns have mismatched lengths (%d vs %d)", c.Len(), maxLen)
		}
	}
	return t, nil
}

func itemName(item sqlparse.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparse.ColRef:
		return e.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

// ---- aggregates ----

var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func isAggregateName(name string) bool { return aggregateNames[strings.ToLower(name)] }

func hasAggregate(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case *sqlparse.FuncCall:
		if isAggregateName(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlparse.BinaryExpr:
		return exprHasAggregate(e.L) || exprHasAggregate(e.R)
	case *sqlparse.UnaryExpr:
		return exprHasAggregate(e.X)
	case *sqlparse.CastExpr:
		return exprHasAggregate(e.X)
	case *sqlparse.IsNullExpr:
		return exprHasAggregate(e.X)
	}
	return false
}

// evalAggregate computes a whole-context aggregate used directly inside an
// expression (non-grouped query), returning a length-1 column. It consumes
// the context's selection vector directly — the filtered rows are never
// materialized.
func (c *Conn) evalAggregate(ctx *evalCtx, call *sqlparse.FuncCall) (*storage.Column, error) {
	if ctx.src == nil {
		return nil, core.Errorf(core.KindSyntax, "aggregate %s requires a FROM clause", call.Name)
	}
	return c.aggregateOver(ctx, call)
}

// aggregateOver computes one aggregate call over the context's logical
// view. A bare column-reference argument feeds the typed aggregation
// kernels unmaterialized (base column plus selection vector); expression
// arguments evaluate through the shared context, so several aggregates
// over the same filtered column materialize it once.
func (c *Conn) aggregateOver(ctx *evalCtx, call *sqlparse.FuncCall) (*storage.Column, error) {
	name := strings.ToLower(call.Name)
	n := ctx.src.NumRows()
	if ctx.sel != nil {
		n = len(ctx.sel)
	}
	if name == "count" && call.Star {
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(int64(n))
		return out, nil
	}
	if len(call.Args) != 1 {
		return nil, core.Errorf(core.KindType, "%s expects exactly one argument", strings.ToUpper(name))
	}
	var col *storage.Column
	var effSel []int32
	if ref, ok := call.Args[0].(*sqlparse.ColRef); ok && !c.DB.ScalarRef {
		base, err := ctx.src.Column(ref.Name)
		if err != nil {
			return nil, err
		}
		col, effSel = base, ctx.sel
	} else {
		var err error
		col, err = c.evalExpr(ctx, call.Args[0])
		if err != nil {
			return nil, err
		}
	}
	if c.DB.ScalarRef {
		return scalarAggregateOver(name, col, false, n)
	}
	p := c.pol()
	switch name {
	case "count":
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(vec.CountNotNull(p, col, effSel))
		return out, nil
	case "sum", "avg":
		isum, fsum, cnt, ok := vec.SumCount(p, col, effSel)
		if !ok {
			// non-numeric input errors only if a row would actually
			// evaluate (NULL rows are skipped before the type check)
			if vec.CountNotNull(p, col, effSel) > 0 {
				return nil, core.Errorf(core.KindType, "%s needs numeric input", strings.ToUpper(name))
			}
			cnt = 0
		}
		if name == "avg" {
			out := storage.NewColumn("", storage.TFloat)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendFloat(fsum / float64(cnt))
			}
			return out, nil
		}
		if col.Typ == storage.TInt {
			out := storage.NewColumn("", storage.TInt)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendInt(isum)
			}
			return out, nil
		}
		out := storage.NewColumn("", storage.TFloat)
		if cnt == 0 {
			out.AppendNull()
		} else {
			out.AppendFloat(fsum)
		}
		return out, nil
	case "min", "max":
		best, err := vec.MinMaxIdx(p, col, effSel, name == "min")
		if err != nil {
			return nil, err
		}
		out := storage.NewColumn("", col.Typ)
		if best < 0 {
			out.AppendNull()
		} else if err := out.AppendValue(col.Value(best)); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindName, "unknown aggregate %s", name)
	}
}

// evalAggregateSelect handles grouped queries (and ungrouped aggregates).
func (c *Conn) evalAggregateSelect(sel *sqlparse.Select, src *storage.Table, selv []int32) (*storage.Table, error) {
	if src == nil {
		return nil, core.Errorf(core.KindSyntax, "aggregates require a FROM clause")
	}
	nLogical := src.NumRows()
	if selv != nil {
		nLogical = len(selv)
	}

	if len(sel.GroupBy) == 0 {
		// One logical group: the whole filtered view, consumed by the
		// aggregation kernels without materializing an intermediate table.
		useEmpty := nLogical == 0
		gctx := c.newCtx(src, selv)
		if !useEmpty && sel.Having != nil {
			hv, err := c.evalGroupItem(gctx, sel.Having)
			if err != nil {
				return nil, err
			}
			if !(hv.Len() == 1 && truthyAt(hv, 0)) {
				// Ungrouped aggregates still yield one row, computed over
				// an empty view (the historical zero-group behavior).
				useEmpty = true
			}
		}
		if useEmpty {
			gctx = c.newCtx(emptyLike(src), nil)
		}
		var outCols []*storage.Column
		for ii, item := range sel.Items {
			if item.Star {
				return nil, core.Errorf(core.KindSyntax, "SELECT * is not valid in an aggregate query")
			}
			val, err := c.evalGroupItem(gctx, item.Expr)
			if err != nil {
				return nil, err
			}
			if val.Len() != 1 {
				return nil, core.Errorf(core.KindConstraint,
					"aggregate query item must produce one value per group")
			}
			col := storage.NewColumn(itemName(item, ii), val.Typ)
			if val.IsNull(0) {
				col.AppendNull()
			} else if err := col.AppendValue(val.Value(0)); err != nil {
				return nil, err
			}
			outCols = append(outCols, col)
		}
		return &storage.Table{Name: "result", Cols: outCols}, nil
	}

	groups, err := c.groupRows(sel.GroupBy, src, selv)
	if err != nil {
		return nil, err
	}
	if sel.Having != nil {
		kept := groups[:0]
		for _, g := range groups {
			sub := gatherTableSel(src, g)
			hv, err := c.evalGroupItem(c.newCtx(sub, nil), sel.Having)
			if err != nil {
				return nil, err
			}
			if hv.Len() == 1 && truthyAt(hv, 0) {
				kept = append(kept, g)
			}
		}
		groups = kept
	}
	var outCols []*storage.Column
	for gi, g := range groups {
		sctx := c.newCtx(gatherTableSel(src, g), nil)
		for ii, item := range sel.Items {
			if item.Star {
				return nil, core.Errorf(core.KindSyntax, "SELECT * is not valid in an aggregate query")
			}
			val, err := c.evalGroupItem(sctx, item.Expr)
			if err != nil {
				return nil, err
			}
			if gi == 0 && ii >= len(outCols) {
				col := storage.NewColumn(itemName(item, ii), val.Typ)
				outCols = append(outCols, col)
			}
			col := outCols[ii]
			if val.Len() != 1 {
				return nil, core.Errorf(core.KindConstraint,
					"aggregate query item must produce one value per group")
			}
			if val.IsNull(0) {
				col.AppendNull()
			} else if err := col.AppendValue(val.Value(0)); err != nil {
				return nil, err
			}
		}
	}
	if len(groups) == 0 {
		for ii, item := range sel.Items {
			outCols = append(outCols, storage.NewColumn(itemName(item, ii), storage.TStr))
		}
	}
	return &storage.Table{Name: "result", Cols: outCols}, nil
}

// evalGroupItem evaluates one projection item over a group's logical
// view (the context shared by every item of the group, so repeated
// references materialize once), producing a single value. Aggregates
// reduce the view; other expressions evaluate per-row and must be
// constant within the group (we take row 0).
func (c *Conn) evalGroupItem(ctx *evalCtx, e sqlparse.Expr) (*storage.Column, error) {
	if call, ok := e.(*sqlparse.FuncCall); ok && isAggregateName(call.Name) {
		return c.aggregateOver(ctx, call)
	}
	switch e := e.(type) {
	case *sqlparse.BinaryExpr:
		if exprHasAggregate(e) {
			l, err := c.evalGroupItem(ctx, e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.evalGroupItem(ctx, e.R)
			if err != nil {
				return nil, err
			}
			return c.evalBinary(e.Op, l, r)
		}
	case *sqlparse.UnaryExpr:
		if exprHasAggregate(e) {
			x, err := c.evalGroupItem(ctx, e.X)
			if err != nil {
				return nil, err
			}
			return c.evalUnary(e.Op, x)
		}
	}
	col, err := c.evalExpr(ctx, e)
	if err != nil {
		return nil, err
	}
	if col.Len() == 0 {
		out := storage.NewColumn("", col.Typ)
		out.AppendNull()
		return out, nil
	}
	return col.Gather([]int{0}), nil
}

// groupRows partitions the logical rows by the GROUP BY key, returning
// per-group physical row indexes into src in first-appearance order. The
// vectorized path hashes typed key vectors; DB.ScalarRef retains the
// formatted-string keying.
func (c *Conn) groupRows(exprs []sqlparse.Expr, src *storage.Table, selv []int32) ([][]int32, error) {
	n := src.NumRows()
	if selv != nil {
		n = len(selv)
	}
	ctx := c.newCtx(src, selv)
	keyCols := make([]*storage.Column, len(exprs))
	for i, e := range exprs {
		col, err := c.evalExpr(ctx, e)
		if err != nil {
			return nil, err
		}
		if col.Len() == 1 && n > 1 {
			col = col.BroadcastTo(n)
		}
		keyCols[i] = col
	}
	if n == 0 {
		return nil, nil
	}
	var groups [][]int32
	if c.DB.ScalarRef {
		groups = c.scalarGroupRows(keyCols, n)
	} else {
		groups = vec.Groups(c.pol(), keyCols, n)
	}
	// map logical group members to physical source rows
	if selv != nil {
		for _, g := range groups {
			for j, li := range g {
				g[j] = selv[li]
			}
		}
	}
	return groups, nil
}

// orderResult sorts the result table in place per ORDER BY. Keys resolve
// against result columns first (aliases), then source columns.
func (c *Conn) orderResult(sel *sqlparse.Select, result, src *storage.Table, selv []int32) error {
	n := result.NumRows()
	keys := make([]*storage.Column, len(sel.OrderBy))
	for ki, item := range sel.OrderBy {
		switch e := item.Expr.(type) {
		case *sqlparse.IntLit:
			pos := int(e.Value)
			if pos < 1 || pos > len(result.Cols) {
				return core.Errorf(core.KindConstraint, "ORDER BY position %d out of range", pos)
			}
			keys[ki] = result.Cols[pos-1]
			continue
		case *sqlparse.ColRef:
			if col, err := result.Column(e.Name); err == nil {
				keys[ki] = col
				continue
			}
		}
		srcRows := -1
		if src != nil {
			srcRows = src.NumRows()
			if selv != nil {
				srcRows = len(selv)
			}
		}
		if srcRows != n {
			return core.Errorf(core.KindConstraint,
				"ORDER BY expression must reference an output column")
		}
		ctx := c.newCtx(src, selv)
		col, err := c.evalExpr(ctx, item.Expr)
		if err != nil {
			return err
		}
		if col.Len() == 1 && n > 1 {
			col = col.BroadcastTo(n)
		}
		keys[ki] = col
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		for ki, key := range keys {
			ia, ib := idx[a], idx[b]
			an, bn := key.IsNull(ia), key.IsNull(ib)
			var cmp int
			switch {
			case an && bn:
				cmp = 0
			case an:
				cmp = -1 // NULLs first
			case bn:
				cmp = 1
			default:
				var err error
				cmp, err = compareAt(key, ia, key, ib)
				if err != nil {
					sortErr = err
					return false
				}
			}
			if sel.OrderBy[ki].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i, col := range result.Cols {
		g := col.Gather(idx)
		g.Name = col.Name
		result.Cols[i] = g
	}
	return nil
}

// distinctRows drops duplicate result rows, keeping first occurrences.
// The vectorized path reuses the typed group hasher over the result
// columns.
func (c *Conn) distinctRows(t *storage.Table) *storage.Table {
	var idx []int32
	if c.DB.ScalarRef {
		idx = scalarDistinctIdx(t)
	} else {
		idx = vec.DistinctReps(c.pol(), t.Cols, t.NumRows())
	}
	if len(idx) == t.NumRows() {
		return t
	}
	return gatherTableSel(t, idx)
}

func gatherTableSel(t *storage.Table, sel []int32) *storage.Table {
	out := &storage.Table{Name: t.Name}
	for _, col := range t.Cols {
		out.Cols = append(out.Cols, col.GatherSel(sel))
	}
	return out
}

func emptyLike(t *storage.Table) *storage.Table {
	return storage.NewTable(t.Name, t.Schema())
}
