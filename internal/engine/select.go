package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// evalSelect executes a SELECT and materializes its result table.
func (c *Conn) evalSelect(sel *sqlparse.Select) (*storage.Table, error) {
	src, err := c.evalFrom(sel.From)
	if err != nil {
		return nil, err
	}

	// WHERE
	if sel.Where != nil && src != nil {
		ctx := &evalCtx{conn: c, src: src, n: src.NumRows()}
		pred, err := c.evalExpr(ctx, sel.Where)
		if err != nil {
			return nil, err
		}
		if pred.Len() == 1 && src.NumRows() != 1 {
			// constant predicate broadcast
			keep := truthyAt(pred, 0)
			if !keep {
				src = emptyLike(src)
			}
		} else {
			var idx []int
			for i := 0; i < pred.Len(); i++ {
				if truthyAt(pred, i) {
					idx = append(idx, i)
				}
			}
			src = gatherTable(src, idx)
		}
	}

	var result *storage.Table
	if len(sel.GroupBy) > 0 || hasAggregate(sel.Items) {
		result, err = c.evalAggregateSelect(sel, src)
	} else {
		if sel.Having != nil {
			return nil, core.Errorf(core.KindSyntax, "HAVING requires GROUP BY or aggregates")
		}
		result, err = c.project(sel, src)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		result = distinctRows(result)
	}

	// ORDER BY
	if len(sel.OrderBy) > 0 {
		if err := c.orderResult(sel, result, src); err != nil {
			return nil, err
		}
	}

	// LIMIT
	if sel.Limit >= 0 && int64(result.NumRows()) > sel.Limit {
		idx := make([]int, sel.Limit)
		for i := range idx {
			idx[i] = i
		}
		result = gatherTable(result, idx)
	}
	return result, nil
}

// evalFrom materializes the FROM source, or nil for FROM-less selects.
func (c *Conn) evalFrom(from sqlparse.FromClause) (*storage.Table, error) {
	switch f := from.(type) {
	case nil:
		return nil, nil
	case *sqlparse.FromTable:
		t, err := c.DB.cat.Table(f.Name)
		if err != nil {
			return nil, err
		}
		return t, nil
	case *sqlparse.FromSelect:
		return c.evalSelect(f.Sel)
	case *sqlparse.FromFunc:
		return c.evalTableFunc(f.Call)
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported FROM clause %T", from)
	}
}

// evalTableFunc executes a table-valued function in FROM: sys_extract or a
// Python table UDF.
func (c *Conn) evalTableFunc(call *sqlparse.FuncCall) (*storage.Table, error) {
	if strings.EqualFold(call.Name, extractFuncName) {
		return c.evalExtract(call)
	}
	def, err := c.DB.cat.Function(call.Name)
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{conn: c, src: nil, n: 1}
	argCols, isColumn, err := c.udfArgColumns(ctx, call.Args)
	if err != nil {
		return nil, err
	}
	return c.callTableUDF(def, argCols, isColumn)
}

// project evaluates the projection list of a non-aggregate select.
func (c *Conn) project(sel *sqlparse.Select, src *storage.Table) (*storage.Table, error) {
	n := 1
	if src != nil {
		n = src.NumRows()
	}
	ctx := &evalCtx{conn: c, src: src, n: n}
	out := &storage.Table{Name: "result"}
	for i, item := range sel.Items {
		if item.Star {
			if src == nil {
				return nil, core.Errorf(core.KindSyntax, "SELECT * requires a FROM clause")
			}
			for _, col := range src.Cols {
				cc := col.Clone()
				out.Cols = append(out.Cols, cc)
			}
			continue
		}
		col, err := c.evalExpr(ctx, item.Expr)
		if err != nil {
			return nil, err
		}
		named := col.Clone()
		named.Name = itemName(item, i)
		out.Cols = append(out.Cols, named)
	}
	return broadcastColumns(out)
}

// broadcastColumns reconciles column lengths: length-1 columns broadcast to
// the longest column (the operator-at-a-time convention that lets a scalar
// UDF result or constant sit beside full columns).
func broadcastColumns(t *storage.Table) (*storage.Table, error) {
	maxLen := 0
	for _, c := range t.Cols {
		if c.Len() > maxLen {
			maxLen = c.Len()
		}
	}
	for i, c := range t.Cols {
		switch {
		case c.Len() == maxLen:
		case c.Len() == 1:
			idx := make([]int, maxLen)
			g := c.Gather(idx)
			g.Name = c.Name
			t.Cols[i] = g
		default:
			return nil, core.Errorf(core.KindConstraint,
				"projection columns have mismatched lengths (%d vs %d)", c.Len(), maxLen)
		}
	}
	return t, nil
}

func itemName(item sqlparse.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *sqlparse.ColRef:
		return e.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

// ---- aggregates ----

var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func isAggregateName(name string) bool { return aggregateNames[strings.ToLower(name)] }

func hasAggregate(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil && exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e sqlparse.Expr) bool {
	switch e := e.(type) {
	case *sqlparse.FuncCall:
		if isAggregateName(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlparse.BinaryExpr:
		return exprHasAggregate(e.L) || exprHasAggregate(e.R)
	case *sqlparse.UnaryExpr:
		return exprHasAggregate(e.X)
	case *sqlparse.CastExpr:
		return exprHasAggregate(e.X)
	case *sqlparse.IsNullExpr:
		return exprHasAggregate(e.X)
	}
	return false
}

// evalAggregate computes a whole-context aggregate used directly inside an
// expression (non-grouped query), returning a length-1 column.
func (c *Conn) evalAggregate(ctx *evalCtx, call *sqlparse.FuncCall) (*storage.Column, error) {
	if ctx.src == nil {
		return nil, core.Errorf(core.KindSyntax, "aggregate %s requires a FROM clause", call.Name)
	}
	return c.aggregateOver(ctx.src, call)
}

// aggregateOver computes one aggregate call over all rows of t.
func (c *Conn) aggregateOver(t *storage.Table, call *sqlparse.FuncCall) (*storage.Column, error) {
	name := strings.ToLower(call.Name)
	n := t.NumRows()
	if name == "count" && call.Star {
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(int64(n))
		return out, nil
	}
	if len(call.Args) != 1 {
		return nil, core.Errorf(core.KindType, "%s expects exactly one argument", strings.ToUpper(name))
	}
	ctx := &evalCtx{conn: c, src: t, n: n}
	col, err := c.evalExpr(ctx, call.Args[0])
	if err != nil {
		return nil, err
	}
	switch name {
	case "count":
		cnt := int64(0)
		for i := 0; i < col.Len(); i++ {
			if !col.IsNull(i) {
				cnt++
			}
		}
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(cnt)
		return out, nil
	case "sum", "avg":
		sum := 0.0
		cnt := 0
		allInt := col.Typ == storage.TInt
		var isum int64
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			v, ok := numericAt(col, i)
			if !ok {
				return nil, core.Errorf(core.KindType, "%s needs numeric input", strings.ToUpper(name))
			}
			sum += v
			if allInt {
				isum += col.Ints[i]
			}
			cnt++
		}
		if name == "avg" {
			out := storage.NewColumn("", storage.TFloat)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendFloat(sum / float64(cnt))
			}
			return out, nil
		}
		if allInt {
			out := storage.NewColumn("", storage.TInt)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendInt(isum)
			}
			return out, nil
		}
		out := storage.NewColumn("", storage.TFloat)
		if cnt == 0 {
			out.AppendNull()
		} else {
			out.AppendFloat(sum)
		}
		return out, nil
	case "min", "max":
		out := storage.NewColumn("", col.Typ)
		best := -1
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			cmp, err := compareAt(col, i, col, best)
			if err != nil {
				return nil, err
			}
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = i
			}
		}
		if best < 0 {
			out.AppendNull()
		} else {
			if err := out.AppendValue(col.Value(best)); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindName, "unknown aggregate %s", name)
	}
}

// evalAggregateSelect handles grouped queries (and ungrouped aggregates).
func (c *Conn) evalAggregateSelect(sel *sqlparse.Select, src *storage.Table) (*storage.Table, error) {
	if src == nil {
		return nil, core.Errorf(core.KindSyntax, "aggregates require a FROM clause")
	}
	groups, err := c.groupRows(sel.GroupBy, src)
	if err != nil {
		return nil, err
	}
	if sel.Having != nil {
		kept := groups[:0]
		for _, g := range groups {
			sub := gatherTable(src, g)
			hv, err := c.evalGroupItem(sub, sel.Having)
			if err != nil {
				return nil, err
			}
			if hv.Len() == 1 && truthyAt(hv, 0) {
				kept = append(kept, g)
			}
		}
		groups = kept
	}
	out := &storage.Table{Name: "result"}
	var outCols []*storage.Column
	for gi, g := range groups {
		sub := gatherTable(src, g)
		for ii, item := range sel.Items {
			if item.Star {
				return nil, core.Errorf(core.KindSyntax, "SELECT * is not valid in an aggregate query")
			}
			val, err := c.evalGroupItem(sub, item.Expr)
			if err != nil {
				return nil, err
			}
			if gi == 0 && ii >= len(outCols) {
				col := storage.NewColumn(itemName(item, ii), val.Typ)
				outCols = append(outCols, col)
			}
			col := outCols[ii]
			if val.Len() != 1 {
				return nil, core.Errorf(core.KindConstraint,
					"aggregate query item must produce one value per group")
			}
			if val.IsNull(0) {
				col.AppendNull()
			} else if err := col.AppendValue(val.Value(0)); err != nil {
				return nil, err
			}
		}
	}
	if len(groups) == 0 {
		// Ungrouped aggregate over an empty table still yields one row.
		if len(sel.GroupBy) == 0 {
			sub := emptyLike(src)
			for ii, item := range sel.Items {
				val, err := c.evalGroupItem(sub, item.Expr)
				if err != nil {
					return nil, err
				}
				col := storage.NewColumn(itemName(item, ii), val.Typ)
				if val.IsNull(0) {
					col.AppendNull()
				} else if err := col.AppendValue(val.Value(0)); err != nil {
					return nil, err
				}
				outCols = append(outCols, col)
			}
		} else {
			for ii, item := range sel.Items {
				outCols = append(outCols, storage.NewColumn(itemName(item, ii), storage.TStr))
			}
		}
	}
	out.Cols = outCols
	return out, nil
}

// evalGroupItem evaluates one projection item over a single group's rows,
// producing a single value. Aggregates reduce the group; other expressions
// evaluate per-row and must be constant within the group (we take row 0).
func (c *Conn) evalGroupItem(group *storage.Table, e sqlparse.Expr) (*storage.Column, error) {
	if call, ok := e.(*sqlparse.FuncCall); ok && isAggregateName(call.Name) {
		return c.aggregateOver(group, call)
	}
	switch e := e.(type) {
	case *sqlparse.BinaryExpr:
		if exprHasAggregate(e) {
			l, err := c.evalGroupItem(group, e.L)
			if err != nil {
				return nil, err
			}
			r, err := c.evalGroupItem(group, e.R)
			if err != nil {
				return nil, err
			}
			return evalBinary(e.Op, l, r)
		}
	case *sqlparse.UnaryExpr:
		if exprHasAggregate(e) {
			x, err := c.evalGroupItem(group, e.X)
			if err != nil {
				return nil, err
			}
			return evalUnary(e.Op, x)
		}
	}
	ctx := &evalCtx{conn: c, src: group, n: group.NumRows()}
	col, err := c.evalExpr(ctx, e)
	if err != nil {
		return nil, err
	}
	if col.Len() == 0 {
		out := storage.NewColumn("", col.Typ)
		out.AppendNull()
		return out, nil
	}
	return col.Gather([]int{0}), nil
}

// groupRows partitions row indexes by the GROUP BY key (one group of all
// rows when there is no GROUP BY). Group order follows first appearance.
func (c *Conn) groupRows(exprs []sqlparse.Expr, src *storage.Table) ([][]int, error) {
	n := src.NumRows()
	if len(exprs) == 0 {
		if n == 0 {
			return nil, nil
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	ctx := &evalCtx{conn: c, src: src, n: n}
	keyCols := make([]*storage.Column, len(exprs))
	for i, e := range exprs {
		col, err := c.evalExpr(ctx, e)
		if err != nil {
			return nil, err
		}
		if col.Len() == 1 && n > 1 {
			col = col.Gather(make([]int, n))
		}
		keyCols[i] = col
	}
	index := map[string]int{}
	var groups [][]int
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for _, kc := range keyCols {
			if kc.IsNull(i) {
				sb.WriteString("\x00N")
			} else {
				sb.WriteString(kc.FormatValue(i))
			}
			sb.WriteByte('\x01')
		}
		k := sb.String()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, nil
}

// orderResult sorts the result table in place per ORDER BY. Keys resolve
// against result columns first (aliases), then source columns.
func (c *Conn) orderResult(sel *sqlparse.Select, result, src *storage.Table) error {
	n := result.NumRows()
	keys := make([]*storage.Column, len(sel.OrderBy))
	for ki, item := range sel.OrderBy {
		switch e := item.Expr.(type) {
		case *sqlparse.IntLit:
			pos := int(e.Value)
			if pos < 1 || pos > len(result.Cols) {
				return core.Errorf(core.KindConstraint, "ORDER BY position %d out of range", pos)
			}
			keys[ki] = result.Cols[pos-1]
			continue
		case *sqlparse.ColRef:
			if col, err := result.Column(e.Name); err == nil {
				keys[ki] = col
				continue
			}
		}
		if src == nil || src.NumRows() != n {
			return core.Errorf(core.KindConstraint,
				"ORDER BY expression must reference an output column")
		}
		ctx := &evalCtx{conn: c, src: src, n: n}
		col, err := c.evalExpr(ctx, item.Expr)
		if err != nil {
			return err
		}
		if col.Len() == 1 && n > 1 {
			col = col.Gather(make([]int, n))
		}
		keys[ki] = col
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		for ki, key := range keys {
			ia, ib := idx[a], idx[b]
			an, bn := key.IsNull(ia), key.IsNull(ib)
			var cmp int
			switch {
			case an && bn:
				cmp = 0
			case an:
				cmp = -1 // NULLs first
			case bn:
				cmp = 1
			default:
				var err error
				cmp, err = compareAt(key, ia, key, ib)
				if err != nil {
					sortErr = err
					return false
				}
			}
			if sel.OrderBy[ki].Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i, col := range result.Cols {
		g := col.Gather(idx)
		g.Name = col.Name
		result.Cols[i] = g
	}
	return nil
}

// distinctRows drops duplicate result rows, keeping first occurrences.
func distinctRows(t *storage.Table) *storage.Table {
	seen := map[string]bool{}
	var idx []int
	for r := 0; r < t.NumRows(); r++ {
		var sb strings.Builder
		for _, col := range t.Cols {
			if col.IsNull(r) {
				sb.WriteString("\x00N")
			} else {
				sb.WriteString(col.FormatValue(r))
			}
			sb.WriteByte('\x01')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			idx = append(idx, r)
		}
	}
	if len(idx) == t.NumRows() {
		return t
	}
	return gatherTable(t, idx)
}

func gatherTable(t *storage.Table, idx []int) *storage.Table {
	out := &storage.Table{Name: t.Name}
	for _, col := range t.Cols {
		g := col.Gather(idx)
		g.Name = col.Name
		out.Cols = append(out.Cols, g)
	}
	return out
}

func emptyLike(t *storage.Table) *storage.Table {
	return storage.NewTable(t.Name, t.Schema())
}
