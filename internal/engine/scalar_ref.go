package engine

// The retained scalar reference evaluator: the engine's original
// row-at-a-time implementation of expressions, filtering, grouping and
// aggregation, kept as the executable semantic specification for the
// vectorized core in internal/engine/vec. DB.ScalarRef routes the whole
// SELECT pipeline through these paths; the differential/property tests
// and BenchmarkFilterAggregate's scalar leg rely on both implementations
// producing identical results.

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
)

// aligned iterates two columns with length-1 broadcast.
func aligned(l, r *storage.Column) (int, func(i int) (int, int), error) {
	ln, rn := l.Len(), r.Len()
	switch {
	case ln == rn:
		return ln, func(i int) (int, int) { return i, i }, nil
	case ln == 1:
		return rn, func(i int) (int, int) { return 0, i }, nil
	case rn == 1:
		return ln, func(i int) (int, int) { return i, 0 }, nil
	default:
		return 0, nil, core.Errorf(core.KindConstraint,
			"column length mismatch: %d vs %d", ln, rn)
	}
}

func scalarEvalUnary(op string, x *storage.Column) (*storage.Column, error) {
	switch op {
	case "-":
		out := storage.NewColumn("", x.Typ)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			switch x.Typ {
			case storage.TInt:
				out.AppendInt(-x.Ints[i])
			case storage.TFloat:
				out.AppendFloat(-x.Flts[i])
			default:
				return nil, core.Errorf(core.KindType, "cannot negate %s", x.Typ)
			}
		}
		return out, nil
	case "NOT":
		out := storage.NewColumn("", storage.TBool)
		for i := 0; i < x.Len(); i++ {
			if x.IsNull(i) {
				out.AppendNull()
				continue
			}
			out.AppendBool(!truthyAt(x, i))
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported unary operator %q", op)
	}
}

func scalarEvalBinary(op string, l, r *storage.Column) (*storage.Column, error) {
	n, at, err := aligned(l, r)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+", "-", "*", "/", "%":
		return scalarEvalArith(op, l, r, n, at)
	case "=", "<>", "<", "<=", ">", ">=":
		return scalarEvalCompare(op, l, r, n, at)
	case "AND", "OR":
		out := storage.NewColumn("", storage.TBool)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			lv, rv := truthyAt(l, li), truthyAt(r, ri)
			if op == "AND" {
				out.AppendBool(lv && rv)
			} else {
				out.AppendBool(lv || rv)
			}
		}
		return out, nil
	case "||":
		out := storage.NewColumn("", storage.TStr)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			if l.IsNull(li) || r.IsNull(ri) {
				out.AppendNull()
				continue
			}
			out.AppendStr(l.FormatValue(li) + r.FormatValue(ri))
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindSyntax, "unsupported operator %q", op)
	}
}

func scalarEvalArith(op string, l, r *storage.Column, n int, at func(int) (int, int)) (*storage.Column, error) {
	bothInt := l.Typ == storage.TInt && r.Typ == storage.TInt
	if bothInt {
		out := storage.NewColumn("", storage.TInt)
		for i := 0; i < n; i++ {
			li, ri := at(i)
			if l.IsNull(li) || r.IsNull(ri) {
				out.AppendNull()
				continue
			}
			a, b := l.Ints[li], r.Ints[ri]
			switch op {
			case "+":
				out.AppendInt(a + b)
			case "-":
				out.AppendInt(a - b)
			case "*":
				out.AppendInt(a * b)
			case "/":
				if b == 0 {
					return nil, core.Errorf(core.KindRuntime, "division by zero")
				}
				out.AppendInt(a / b)
			case "%":
				if b == 0 {
					return nil, core.Errorf(core.KindRuntime, "division by zero")
				}
				out.AppendInt(a % b)
			}
		}
		return out, nil
	}
	out := storage.NewColumn("", storage.TFloat)
	for i := 0; i < n; i++ {
		li, ri := at(i)
		if l.IsNull(li) || r.IsNull(ri) {
			out.AppendNull()
			continue
		}
		a, aok := numericAt(l, li)
		b, bok := numericAt(r, ri)
		if !aok || !bok {
			return nil, core.Errorf(core.KindType,
				"cannot apply %q to %s and %s", op, l.Typ, r.Typ)
		}
		switch op {
		case "+":
			out.AppendFloat(a + b)
		case "-":
			out.AppendFloat(a - b)
		case "*":
			out.AppendFloat(a * b)
		case "/":
			if b == 0 {
				return nil, core.Errorf(core.KindRuntime, "division by zero")
			}
			out.AppendFloat(a / b)
		case "%":
			if b == 0 {
				return nil, core.Errorf(core.KindRuntime, "division by zero")
			}
			out.AppendFloat(math.Mod(a, b))
		}
	}
	return out, nil
}

func scalarEvalCompare(op string, l, r *storage.Column, n int, at func(int) (int, int)) (*storage.Column, error) {
	out := storage.NewColumn("", storage.TBool)
	for i := 0; i < n; i++ {
		li, ri := at(i)
		if l.IsNull(li) || r.IsNull(ri) {
			out.AppendNull() // SQL three-valued: comparisons with NULL are NULL
			continue
		}
		cmp, err := compareAt(l, li, r, ri)
		if err != nil {
			return nil, err
		}
		var v bool
		switch op {
		case "=":
			v = cmp == 0
		case "<>":
			v = cmp != 0
		case "<":
			v = cmp < 0
		case "<=":
			v = cmp <= 0
		case ">":
			v = cmp > 0
		case ">=":
			v = cmp >= 0
		}
		out.AppendBool(v)
	}
	return out, nil
}

// writeKeyCell appends one injective key cell: length-prefixed so
// separator bytes inside string values cannot collide, and blob CONTENT
// rather than FormatValue's "<blob NB>" (the historical length-only
// blob key collapsed distinct same-length blobs — a defect the typed
// hasher fixed; the reference keys match it).
func writeKeyCell(sb *strings.Builder, c *storage.Column, i int) {
	if c.IsNull(i) {
		sb.WriteString("\x00N")
		return
	}
	v := c.FormatValue(i)
	if c.Typ == storage.TBlob {
		v = string(c.Blobs[i])
	}
	sb.WriteString(strconv.Itoa(len(v)))
	sb.WriteByte(':')
	sb.WriteString(v)
}

// scalarGroupRows is the historical GROUP BY keying: every row formatted
// through a strings.Builder into a map key.
func (c *Conn) scalarGroupRows(keyCols []*storage.Column, n int) [][]int32 {
	index := map[string]int{}
	var groups [][]int32
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for _, kc := range keyCols {
			writeKeyCell(&sb, kc, i)
			sb.WriteByte('\x01')
		}
		k := sb.String()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], int32(i))
	}
	return groups
}

// scalarAggregateOver computes one aggregate call's reduction with the
// historical per-row numericAt/compareAt loops over an evaluated column.
func scalarAggregateOver(name string, col *storage.Column, countStar bool, n int) (*storage.Column, error) {
	if name == "count" && countStar {
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(int64(n))
		return out, nil
	}
	switch name {
	case "count":
		cnt := int64(0)
		for i := 0; i < col.Len(); i++ {
			if !col.IsNull(i) {
				cnt++
			}
		}
		out := storage.NewColumn("", storage.TInt)
		out.AppendInt(cnt)
		return out, nil
	case "sum", "avg":
		sum := 0.0
		cnt := 0
		allInt := col.Typ == storage.TInt
		var isum int64
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			v, ok := numericAt(col, i)
			if !ok {
				return nil, core.Errorf(core.KindType, "%s needs numeric input", strings.ToUpper(name))
			}
			sum += v
			if allInt {
				isum += col.Ints[i]
			}
			cnt++
		}
		if name == "avg" {
			out := storage.NewColumn("", storage.TFloat)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendFloat(sum / float64(cnt))
			}
			return out, nil
		}
		if allInt {
			out := storage.NewColumn("", storage.TInt)
			if cnt == 0 {
				out.AppendNull()
			} else {
				out.AppendInt(isum)
			}
			return out, nil
		}
		out := storage.NewColumn("", storage.TFloat)
		if cnt == 0 {
			out.AppendNull()
		} else {
			out.AppendFloat(sum)
		}
		return out, nil
	case "min", "max":
		out := storage.NewColumn("", col.Typ)
		best := -1
		for i := 0; i < col.Len(); i++ {
			if col.IsNull(i) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			cmp, err := compareAt(col, i, col, best)
			if err != nil {
				return nil, err
			}
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = i
			}
		}
		if best < 0 {
			out.AppendNull()
		} else {
			if err := out.AppendValue(col.Value(best)); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, core.Errorf(core.KindName, "unknown aggregate %s", name)
	}
}

// scalarGatherTable reproduces the historical materialization strategy:
// append-grown columns filled row-at-a-time with per-row null checks —
// what WHERE and LIMIT paid before selection vectors.
func scalarGatherTable(t *storage.Table, idx []int32) *storage.Table {
	out := &storage.Table{Name: t.Name}
	for _, col := range t.Cols {
		g := storage.NewColumn(col.Name, col.Typ)
		for _, i := range idx {
			if col.IsNull(int(i)) {
				g.AppendNull()
				continue
			}
			switch col.Typ {
			case storage.TInt:
				g.AppendInt(col.Ints[i])
			case storage.TFloat:
				g.AppendFloat(col.Flts[i])
			case storage.TStr:
				g.AppendStr(col.Strs[i])
			case storage.TBool:
				g.AppendBool(col.Bools[i])
			case storage.TBlob:
				g.AppendBlob(col.Blobs[i])
			}
		}
		out.Cols = append(out.Cols, g)
	}
	return out
}

// scalarDistinctIdx is the historical DISTINCT keying over formatted
// rows, returning the first-occurrence indexes.
func scalarDistinctIdx(t *storage.Table) []int32 {
	seen := map[string]bool{}
	var idx []int32
	for r := 0; r < t.NumRows(); r++ {
		var sb strings.Builder
		for _, col := range t.Cols {
			writeKeyCell(&sb, col, r)
			sb.WriteByte('\x01')
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			idx = append(idx, int32(r))
		}
	}
	return idx
}
