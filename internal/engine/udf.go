package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sync/atomic"

	"strings"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/storage"
	"repro/internal/udfrt"
	"repro/internal/udfrt/pyrt"
)

// compiledUDF caches a runtime-compiled callable, keyed by a hash of the
// definition so CREATE OR REPLACE invalidates naturally.
type compiledUDF struct {
	hash string
	call udfrt.Callable
}

// defHash fingerprints everything a runtime compiles against.
func defHash(def *storage.FuncDef) string {
	h := sha256.New()
	for _, part := range []string{def.Name, def.Language, def.Body} {
		io.WriteString(h, part)
		h.Write([]byte{0})
	}
	for _, s := range []storage.Schema{def.Params, def.Returns} {
		for _, c := range s {
			io.WriteString(h, c.Name)
			io.WriteString(h, c.Type.String())
			h.Write([]byte{0})
		}
	}
	if def.IsTable {
		h.Write([]byte{1})
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// callableFor resolves the runtime serving a definition's LANGUAGE and
// returns its compiled callable, from the per-DB cache when the definition
// is unchanged.
func (c *Conn) callableFor(def *storage.FuncDef) (udfrt.Callable, error) {
	rt, err := udfrt.Lookup(def.Language)
	if err != nil {
		return nil, err
	}
	h := defHash(def)
	key := strings.ToLower(def.Name)
	if cu, ok := c.DB.compiled[key]; ok && cu.hash == h {
		return cu.call, nil
	}
	call, err := rt.Compile(def)
	if err != nil {
		return nil, err
	}
	c.DB.compiled[key] = &compiledUDF{hash: h, call: call}
	return call, nil
}

// udfEnv builds the per-statement invocation environment handed to a
// runtime: the session's file system, step budget, print channel, loopback
// connection and (when the remote debugger is attached) the invoke hook.
func (c *Conn) udfEnv() *udfrt.Env {
	env := &udfrt.Env{
		FS:       c.DB.FS,
		MaxSteps: c.DB.MaxUDFSteps,
		MaxWall:  c.DB.MaxUDFWall,
		Loopback: func(in *script.Interp) script.Value { return c.loopbackConn(in) },
		Invoke:   c.UDFInvoke,
	}
	if st := c.DB.activeIntr; st != nil {
		env.Interrupt = st.err
	}
	if c.DB.UDFOutput != nil {
		env.Stdout = c.DB.UDFOutput
	}
	return env
}

// callScalarUDF executes a scalar UDF over argument columns in the active
// processing mode, returning the result column (length-1 results broadcast
// at projection time). isColumn follows udfArgColumns's calling
// convention: columnar arguments pass as lists, constants as scalars.
func (c *Conn) callScalarUDF(name string, argCols []*storage.Column, isColumn []bool) (*storage.Column, error) {
	def, err := c.DB.cat.Function(name)
	if err != nil {
		return nil, err
	}
	if def.IsTable {
		return nil, core.Errorf(core.KindType,
			"%s is a table function; use it in FROM", def.Name)
	}
	if len(argCols) != len(def.Params) {
		return nil, core.Errorf(core.KindConstraint,
			"%s expects %d argument(s), got %d", def.Name, len(def.Params), len(argCols))
	}
	in := udfrt.NewBatch(argCols, isColumn)
	// The logical row count comes from the columnar arguments — a length-1
	// constant must not mask an empty input column. An operator with no
	// input tuples is never invoked: a scalar UDF over an empty column
	// yields an empty column, not a broadcast 1-row result.
	if n, ok := columnarRows(argCols, isColumn); ok {
		if n == 0 {
			return storage.NewColumn(def.Returns[0].Name, def.Returns[0].Type), nil
		}
		in.Rows = n
	}
	call, err := c.callableFor(def)
	if err != nil {
		return nil, err
	}
	env := c.udfEnv()
	if c.DB.Mode == ModeTupleAtATime {
		return c.callScalarUDFTuple(def, call, env, in)
	}
	if col, ok, err := c.callScalarUDFMorsels(def, call, env, in); err != nil {
		return nil, err
	} else if ok {
		return col, nil
	}
	out, err := c.instrumentedCall(def, call, env, in)
	if err != nil {
		return nil, err
	}
	return scalarResult(def, out, in.Rows)
}

// callScalarUDFMorsels runs a parallel-safe scalar UDF batch split into
// morsels across workers — native GO UDF calls ride the same
// morsel-driven pipeline as the built-in kernels. ok=false falls back to
// the single whole-batch call: the runtime is not parallel-safe, the
// batch is too small to win, or a morsel returned a broadcast
// (aggregate-style) result that must be computed over the whole batch.
func (c *Conn) callScalarUDFMorsels(def *storage.FuncDef, call udfrt.Callable,
	env *udfrt.Env, in *udfrt.Batch) (*storage.Column, bool, error) {
	ps, ok := call.(udfrt.ParallelSafe)
	if !ok || !ps.ParallelSafe() {
		return nil, false, nil
	}
	p := c.pol()
	// Morsel size 1 would make an aggregate-style UDF's per-morsel scalar
	// result (length 1) indistinguishable from an elementwise one-row
	// result, defeating the broadcast detection below — never split then.
	if p.NumWorkers() == 1 || p.Morsel() < 2 || in.Rows < 2*p.Morsel() {
		return nil, false, nil
	}
	// Every column must be batch-aligned or a length-1 constant: a
	// mis-sized columnar argument passes through Batch.Slice whole and
	// would look aligned to each morsel, silently re-broadcasting where
	// the whole-batch call correctly errors.
	for _, col := range in.Cols {
		if col.Len() != in.Rows && col.Len() != 1 {
			return nil, false, nil
		}
	}
	nm := p.NumMorsels(in.Rows)
	outs := make([]*storage.Column, nm)
	errs := make([]error, nm)
	var broadcast atomic.Bool
	p.RunIdx(in.Rows, func(m, lo, hi int) {
		if broadcast.Load() {
			return
		}
		b := in.Slice(lo, hi)
		ob, err := c.instrumentedCall(def, call, env, b)
		if err != nil {
			errs[m] = err
			return
		}
		col, err := scalarResult(def, ob, b.Rows)
		if err != nil {
			errs[m] = err
			return
		}
		if col.Len() != b.Rows {
			broadcast.Store(true)
			return
		}
		outs[m] = col
	})
	// UDF errors are user-authored and row-dependent, so unlike the
	// engine kernels every morsel runs to completion and the earliest
	// morsel's error wins — the reported message is deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, false, err
		}
	}
	// An interrupted run leaves unclaimed morsels' outputs nil; abort
	// before stitching a partial result.
	if err := c.interruptErr(); err != nil {
		return nil, false, err
	}
	if broadcast.Load() {
		return nil, false, nil
	}
	out := storage.NewColumn(def.Returns[0].Name, def.Returns[0].Type)
	out.Reserve(in.Rows)
	for _, mc := range outs {
		if err := out.AppendAll(mc); err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// columnarRows reports the longest columnar argument's length and whether
// any argument is columnar at all.
func columnarRows(argCols []*storage.Column, isColumn []bool) (int, bool) {
	n, has := 0, false
	for i, col := range argCols {
		if i < len(isColumn) && isColumn[i] {
			has = true
			if col.Len() > n {
				n = col.Len()
			}
		}
	}
	return n, has
}

// scalarResult validates a scalar call's result batch: one column with
// either rows values or a single (aggregate-style) value.
func scalarResult(def *storage.FuncDef, out *udfrt.Batch, rows int) (*storage.Column, error) {
	if out == nil || len(out.Cols) != 1 {
		n := 0
		if out != nil {
			n = len(out.Cols)
		}
		return nil, core.Errorf(core.KindConstraint,
			"UDF %s returned %d columns, declared 1", def.Name, n)
	}
	col := out.Cols[0]
	if rows > 0 && col.Len() != rows && col.Len() != 1 {
		return nil, core.Errorf(core.KindConstraint,
			"UDF returned %d rows for %d input rows", col.Len(), rows)
	}
	col.Name = def.Returns[0].Name
	return col, nil
}

// callScalarUDFTuple is the §2.4 tuple-at-a-time model: one runtime call
// per input row, scalar in, scalar out. The shared Env lets
// interpreter-based runtimes reuse one prepared instance across the loop.
func (c *Conn) callScalarUDFTuple(def *storage.FuncDef, call udfrt.Callable,
	env *udfrt.Env, in *udfrt.Batch) (*storage.Column, error) {
	out := storage.NewColumn(def.Returns[0].Name, def.Returns[0].Type)
	for r := 0; r < in.Rows; r++ {
		if err := c.interruptErr(); err != nil {
			return nil, err
		}
		ob, err := c.instrumentedCall(def, call, env, in.Row(r))
		if err != nil {
			return nil, err
		}
		col, err := scalarResult(def, ob, 1)
		if err != nil {
			return nil, err
		}
		if col.IsNull(0) {
			out.AppendNull()
			continue
		}
		if err := out.AppendValue(col.Value(0)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// callTableUDF executes a RETURNS TABLE(...) UDF (or a scalar UDF used in
// FROM) through its runtime; length-1 result columns broadcast to the
// longest one.
func (c *Conn) callTableUDF(def *storage.FuncDef, argCols []*storage.Column, isColumn []bool) (*storage.Table, error) {
	if len(argCols) != len(def.Params) {
		return nil, core.Errorf(core.KindConstraint,
			"%s expects %d argument(s), got %d", def.Name, len(def.Params), len(argCols))
	}
	call, err := c.callableFor(def)
	if err != nil {
		return nil, err
	}
	in := udfrt.NewBatch(argCols, isColumn)
	if n, ok := columnarRows(argCols, isColumn); ok && n > 0 {
		in.Rows = n
	}
	out, err := c.instrumentedCall(def, call, c.udfEnv(), in)
	if err != nil {
		return nil, err
	}
	want := len(def.Returns)
	if !def.IsTable {
		want = 1 // scalar function used in FROM: one column, as a table
	}
	if out == nil || len(out.Cols) != want {
		n := 0
		if out != nil {
			n = len(out.Cols)
		}
		return nil, core.Errorf(core.KindConstraint,
			"UDF %s returned %d columns, declared %d", def.Name, n, want)
	}
	return broadcastColumns(&storage.Table{Name: def.Name, Cols: out.Cols})
}

func maxColLen(cols []*storage.Column) int {
	n := 0
	for _, c := range cols {
		if c.Len() > n {
			n = c.Len()
		}
	}
	return n
}

// ---- loopback connection (_conn) ----

// loopbackConn builds the _conn object passed to every UDF (paper §2.3):
// execute(sql) runs a query against this same database and returns a dict
// of column name to values — a list per column, or a bare scalar when the
// result has exactly one row (the convention Listing 3 relies on:
// res['clf'] of a one-row result is directly loads-able).
func (c *Conn) loopbackConn(in *script.Interp) *script.ObjectVal {
	obj := script.NewObject("connection")
	obj.Methods["execute"] = func(_ *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, core.Errorf(core.KindType, "execute() takes exactly one argument")
		}
		sql, ok := args[0].(script.StrVal)
		if !ok {
			return nil, core.Errorf(core.KindType, "execute() argument must be a string")
		}
		res, err := c.exec(string(sql))
		if err != nil {
			return nil, err
		}
		if res.Table == nil {
			return script.None, nil
		}
		return TableToScriptDict(res.Table), nil
	}
	return obj
}

// TableToScriptDict converts a result table to the loopback dict shape.
func TableToScriptDict(t *storage.Table) *script.DictVal {
	d := script.NewDict()
	single := t.NumRows() == 1
	for _, col := range t.Cols {
		d.SetStr(col.Name, pyrt.ColumnToValue(col, !single))
	}
	return d
}
