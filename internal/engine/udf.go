package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/storage"
	"repro/internal/transform"
)

// compiledUDF caches a parsed UDF wrapper module, keyed by a hash of the
// synthesized source so CREATE OR REPLACE invalidates naturally.
type compiledUDF struct {
	hash string
	mod  *script.Module
}

func bodyHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:8])
}

// compileUDF wraps the stored body into a callable function definition
// (MonetDB stores only the body — paper Listing 1) and parses it.
func (c *Conn) compileUDF(def *storage.FuncDef) (*script.Module, error) {
	src := transform.WrapFunction(def.Name, def.Params.Names(), def.Body)
	h := bodyHash(src)
	key := strings.ToLower(def.Name)
	if cu, ok := c.DB.compiled[key]; ok && cu.hash == h {
		return cu.mod, nil
	}
	mod, err := script.Parse(def.Name, src)
	if err != nil {
		return nil, core.Errorf(core.KindSyntax, "in UDF %s: %v", def.Name, errText(err))
	}
	c.DB.compiled[key] = &compiledUDF{hash: h, mod: mod}
	return mod, nil
}

func errText(err error) string {
	if ce, ok := err.(*core.Error); ok {
		return ce.Msg
	}
	return err.Error()
}

// newUDFInterp builds a fresh interpreter for one UDF invocation.
func (c *Conn) newUDFInterp() *script.Interp {
	in := script.NewInterp()
	in.FS = c.DB.FS
	in.MaxSteps = c.DB.MaxUDFSteps
	if c.DB.UDFOutput != nil {
		in.Stdout = c.DB.UDFOutput
	} else {
		in.Stdout = io.Discard
	}
	return in
}

// prepareUDF compiles and instantiates a UDF, returning the interpreter,
// the bound function value with _conn installed for loopback queries, and
// the compiled wrapper module (whose source lines feed the debugger).
func (c *Conn) prepareUDF(def *storage.FuncDef) (*script.Interp, script.Value, *script.Module, error) {
	mod, err := c.compileUDF(def)
	if err != nil {
		return nil, nil, nil, err
	}
	in := c.newUDFInterp()
	env, err := in.Run(mod)
	if err != nil {
		return nil, nil, nil, wrapUDFErr(def.Name, err)
	}
	fn, ok := env.Get(def.Name)
	if !ok {
		return nil, nil, nil, core.Errorf(core.KindRuntime, "UDF %s did not define itself", def.Name)
	}
	env.Set("_conn", c.loopbackConn(in))
	return in, fn, mod, nil
}

// invokeUDF runs one UDF call, routing it through the session's UDFInvoke
// hook when one is installed (the remote debugger's entry point).
func (c *Conn) invokeUDF(def *storage.FuncDef, in *script.Interp, mod *script.Module,
	fn script.Value, args []script.Value) (script.Value, error) {
	call := func() (script.Value, error) { return in.Call(fn, args) }
	if c.UDFInvoke == nil {
		return call()
	}
	return c.UDFInvoke(def.Name, in, mod.Lines, call)
}

func wrapUDFErr(name string, err error) error {
	if re, ok := err.(*script.RuntimeError); ok {
		return core.Errorf(core.KindRuntime, "UDF %s failed: %s", name, re.Error())
	}
	return core.Errorf(core.KindRuntime, "UDF %s failed: %v", name, err)
}

// callScalarUDF executes a scalar UDF over argument columns in the active
// processing mode, returning the result column (length-1 results broadcast
// at projection time). isColumn follows udfArgColumns's calling
// convention: columnar arguments pass as lists, constants as scalars.
func (c *Conn) callScalarUDF(name string, argCols []*storage.Column, isColumn []bool) (*storage.Column, error) {
	def, err := c.DB.cat.Function(name)
	if err != nil {
		return nil, err
	}
	if def.IsTable {
		return nil, core.Errorf(core.KindType,
			"%s is a table function; use it in FROM", def.Name)
	}
	if len(argCols) != len(def.Params) {
		return nil, core.Errorf(core.KindConstraint,
			"%s expects %d argument(s), got %d", def.Name, len(def.Params), len(argCols))
	}
	if c.DB.Mode == ModeTupleAtATime {
		return c.callScalarUDFTuple(def, argCols)
	}
	in, fn, mod, err := c.prepareUDF(def)
	if err != nil {
		return nil, err
	}
	args := make([]script.Value, len(argCols))
	for i, col := range argCols {
		args[i] = columnToValue(col, isColumn[i])
	}
	out, err := c.invokeUDF(def, in, mod, fn, args)
	if err != nil {
		return nil, wrapUDFErr(def.Name, err)
	}
	rows := maxColLen(argCols)
	return valueToColumn(out, def.Returns[0].Name, def.Returns[0].Type, rows)
}

// callScalarUDFTuple is the §2.4 tuple-at-a-time model: one interpreter
// call per input row, scalar in, scalar out.
func (c *Conn) callScalarUDFTuple(def *storage.FuncDef, argCols []*storage.Column) (*storage.Column, error) {
	in, fn, mod, err := c.prepareUDF(def)
	if err != nil {
		return nil, err
	}
	rows := maxColLen(argCols)
	out := storage.NewColumn(def.Returns[0].Name, def.Returns[0].Type)
	args := make([]script.Value, len(argCols))
	for r := 0; r < rows; r++ {
		for i, col := range argCols {
			ri := r
			if col.Len() == 1 {
				ri = 0
			}
			args[i] = cellToValue(col, ri)
		}
		v, err := c.invokeUDF(def, in, mod, fn, args)
		if err != nil {
			return nil, wrapUDFErr(def.Name, err)
		}
		if err := appendScriptValue(out, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// callTableUDF executes a RETURNS TABLE(...) UDF.
func (c *Conn) callTableUDF(def *storage.FuncDef, argCols []*storage.Column, isColumn []bool) (*storage.Table, error) {
	if len(argCols) != len(def.Params) {
		return nil, core.Errorf(core.KindConstraint,
			"%s expects %d argument(s), got %d", def.Name, len(def.Params), len(argCols))
	}
	in, fn, mod, err := c.prepareUDF(def)
	if err != nil {
		return nil, err
	}
	args := make([]script.Value, len(argCols))
	for i, col := range argCols {
		args[i] = columnToValue(col, isColumn[i])
	}
	out, err := c.invokeUDF(def, in, mod, fn, args)
	if err != nil {
		return nil, wrapUDFErr(def.Name, err)
	}
	if !def.IsTable {
		// scalar function used in FROM: one column, broadcast as a table
		col, err := valueToColumn(out, def.Returns[0].Name, def.Returns[0].Type, -1)
		if err != nil {
			return nil, err
		}
		return &storage.Table{Name: def.Name, Cols: []*storage.Column{col}}, nil
	}
	return scriptResultToTable(def, out)
}

// scriptResultToTable converts a table UDF's return value — a dict keyed by
// column name, a positional tuple, a bare list (single column) or a scalar
// (single row) — into a table matching the declared schema.
func scriptResultToTable(def *storage.FuncDef, v script.Value) (*storage.Table, error) {
	t := &storage.Table{Name: def.Name}
	switch v := v.(type) {
	case *script.DictVal:
		for _, ret := range def.Returns {
			cell, ok := v.GetStr(ret.Name)
			if !ok {
				return nil, core.Errorf(core.KindConstraint,
					"UDF %s result is missing column %q", def.Name, ret.Name)
			}
			col, err := valueToColumn(cell, ret.Name, ret.Type, -1)
			if err != nil {
				return nil, err
			}
			t.Cols = append(t.Cols, col)
		}
	case *script.TupleVal:
		if len(v.Items) != len(def.Returns) {
			return nil, core.Errorf(core.KindConstraint,
				"UDF %s returned %d columns, declared %d", def.Name, len(v.Items), len(def.Returns))
		}
		for i, ret := range def.Returns {
			col, err := valueToColumn(v.Items[i], ret.Name, ret.Type, -1)
			if err != nil {
				return nil, err
			}
			t.Cols = append(t.Cols, col)
		}
	default:
		if len(def.Returns) != 1 {
			return nil, core.Errorf(core.KindConstraint,
				"UDF %s must return a dict or tuple of %d columns", def.Name, len(def.Returns))
		}
		col, err := valueToColumn(v, def.Returns[0].Name, def.Returns[0].Type, -1)
		if err != nil {
			return nil, err
		}
		t.Cols = append(t.Cols, col)
	}
	tt, err := broadcastColumns(t)
	if err != nil {
		return nil, err
	}
	return tt, nil
}

func maxColLen(cols []*storage.Column) int {
	n := 0
	for _, c := range cols {
		if c.Len() > n {
			n = c.Len()
		}
	}
	return n
}

// ---- value conversion ----

// columnToValue converts a column to the UDF-facing representation per
// MonetDB/Python's convention: arguments deriving from table data arrive
// as lists (isColumn true), constant expressions as bare scalars — even
// when the column holds a single row.
func columnToValue(col *storage.Column, isColumn bool) script.Value {
	if !isColumn {
		if col.Len() == 0 {
			return script.None
		}
		return cellToValue(col, 0)
	}
	items := make([]script.Value, col.Len())
	for i := range items {
		items[i] = cellToValue(col, i)
	}
	return script.NewList(items...)
}

func cellToValue(col *storage.Column, i int) script.Value {
	if col.IsNull(i) {
		return script.None
	}
	switch col.Typ {
	case storage.TInt:
		return script.IntVal(col.Ints[i])
	case storage.TFloat:
		return script.FloatVal(col.Flts[i])
	case storage.TStr:
		return script.StrVal(col.Strs[i])
	case storage.TBool:
		return script.BoolVal(col.Bools[i])
	case storage.TBlob:
		return script.BytesVal(col.Blobs[i])
	default:
		return script.None
	}
}

// valueToColumn converts a UDF result into a typed column. expectRows > 0
// enforces MonetDB's rule that a scalar UDF over n-row columns returns
// either n values or a single (aggregate-style) value; pass -1 to accept
// any length.
func valueToColumn(v script.Value, name string, typ storage.Type, expectRows int) (*storage.Column, error) {
	col := storage.NewColumn(name, typ)
	items, isSeq := sequenceItems(v)
	if !isSeq {
		if err := appendScriptValue(col, v); err != nil {
			return nil, err
		}
		return col, nil
	}
	for _, it := range items {
		if err := appendScriptValue(col, it); err != nil {
			return nil, err
		}
	}
	if expectRows > 0 && col.Len() != expectRows && col.Len() != 1 {
		return nil, core.Errorf(core.KindConstraint,
			"UDF returned %d rows for %d input rows", col.Len(), expectRows)
	}
	return col, nil
}

func sequenceItems(v script.Value) ([]script.Value, bool) {
	switch v := v.(type) {
	case *script.ListVal:
		return v.Items, true
	case *script.TupleVal:
		return v.Items, true
	case script.RangeVal:
		items := make([]script.Value, 0, v.Len())
		if v.Step != 0 {
			for i := v.Start; int64(len(items)) < v.Len(); i += v.Step {
				items = append(items, script.IntVal(i))
			}
		}
		return items, true
	default:
		return nil, false
	}
}

func appendScriptValue(col *storage.Column, v script.Value) error {
	if _, ok := v.(script.NoneVal); ok {
		col.AppendNull()
		return nil
	}
	switch col.Typ {
	case storage.TInt:
		if n, ok := script.AsInt(v); ok {
			col.AppendInt(n)
			return nil
		}
		if f, ok := v.(script.FloatVal); ok {
			col.AppendInt(int64(f))
			return nil
		}
	case storage.TFloat:
		if f, ok := script.AsFloat(v); ok {
			col.AppendFloat(f)
			return nil
		}
	case storage.TStr:
		if s, ok := v.(script.StrVal); ok {
			col.AppendStr(string(s))
			return nil
		}
		col.AppendStr(script.Str(v))
		return nil
	case storage.TBool:
		col.AppendBool(script.Truthy(v))
		return nil
	case storage.TBlob:
		switch v := v.(type) {
		case script.BytesVal:
			col.AppendBlob([]byte(v))
			return nil
		case script.StrVal:
			col.AppendBlob([]byte(v))
			return nil
		}
	}
	return core.Errorf(core.KindType,
		"cannot convert %s value to %s column", v.TypeName(), col.Typ)
}

// ---- loopback connection (_conn) ----

// loopbackConn builds the _conn object passed to every UDF (paper §2.3):
// execute(sql) runs a query against this same database and returns a dict
// of column name to values — a list per column, or a bare scalar when the
// result has exactly one row (the convention Listing 3 relies on:
// res['clf'] of a one-row result is directly loads-able).
func (c *Conn) loopbackConn(in *script.Interp) *script.ObjectVal {
	obj := script.NewObject("connection")
	obj.Methods["execute"] = func(_ *script.Interp, args []script.Value, _ map[string]script.Value) (script.Value, error) {
		if len(args) != 1 {
			return nil, core.Errorf(core.KindType, "execute() takes exactly one argument")
		}
		sql, ok := args[0].(script.StrVal)
		if !ok {
			return nil, core.Errorf(core.KindType, "execute() argument must be a string")
		}
		res, err := c.exec(string(sql))
		if err != nil {
			return nil, err
		}
		if res.Table == nil {
			return script.None, nil
		}
		return TableToScriptDict(res.Table), nil
	}
	return obj
}

// TableToScriptDict converts a result table to the loopback dict shape.
func TableToScriptDict(t *storage.Table) *script.DictVal {
	d := script.NewDict()
	single := t.NumRows() == 1
	for _, col := range t.Cols {
		if single {
			d.SetStr(col.Name, cellToValue(col, 0))
			continue
		}
		items := make([]script.Value, col.Len())
		for i := range items {
			items[i] = cellToValue(col, i)
		}
		d.SetStr(col.Name, script.NewList(items...))
	}
	return d
}
