package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func newTestConn() *Conn {
	db := NewDB()
	db.FS = core.NewMemFS(nil)
	return &Conn{DB: db, User: "monetdb", Password: "monetdb"}
}

func mustExec(t *testing.T, c *Conn, sql string) *Result {
	t.Helper()
	r, err := c.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func execErr(t *testing.T, c *Conn, sql string) error {
	t.Helper()
	_, err := c.Exec(sql)
	if err == nil {
		t.Fatalf("Exec(%q) should fail", sql)
	}
	return err
}

func intCol(t *testing.T, tbl *storage.Table, name string) []int64 {
	t.Helper()
	col, err := tbl.Column(name)
	if err != nil {
		t.Fatalf("column %s: %v", name, err)
	}
	return col.Ints
}

func TestCreateInsertSelect(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE numbers (i INTEGER)`)
	mustExec(t, c, `INSERT INTO numbers VALUES (3), (1), (2)`)
	r := mustExec(t, c, `SELECT i FROM numbers ORDER BY i`)
	if got := intCol(t, r.Table, "i"); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("rows: %v", got)
	}
}

func TestSelectExpressionsAndWhere(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER, s STRING)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, NULL)`)
	r := mustExec(t, c, `SELECT i * 10 AS x, s FROM t WHERE i > 1 AND i < 4 ORDER BY i DESC`)
	if got := intCol(t, r.Table, "x"); len(got) != 2 || got[0] != 30 || got[1] != 20 {
		t.Fatalf("x: %v", got)
	}
	// NULL comparisons exclude rows
	r = mustExec(t, c, `SELECT i FROM t WHERE s = 'a'`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	r = mustExec(t, c, `SELECT i FROM t WHERE s IS NULL`)
	if got := intCol(t, r.Table, "i"); len(got) != 1 || got[0] != 4 {
		t.Fatalf("is null: %v", got)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	c := newTestConn()
	r := mustExec(t, c, `SELECT 1 + 2 AS three, 'x' AS s, 2.5 * 2 AS five`)
	if got := intCol(t, r.Table, "three"); got[0] != 3 {
		t.Fatalf("three: %v", got)
	}
	f, _ := r.Table.Column("five")
	if f.Flts[0] != 5.0 {
		t.Fatalf("five: %v", f.Flts)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE sales (region STRING, amount INTEGER)`)
	mustExec(t, c, `INSERT INTO sales VALUES ('n', 10), ('n', 20), ('s', 5), ('s', 7), ('s', 9)`)
	r := mustExec(t, c, `SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean FROM sales GROUP BY region ORDER BY region`)
	if r.Table.NumRows() != 2 {
		t.Fatalf("groups: %d", r.Table.NumRows())
	}
	if got := intCol(t, r.Table, "total"); got[0] != 30 || got[1] != 21 {
		t.Fatalf("totals: %v", got)
	}
	mean, _ := r.Table.Column("mean")
	if mean.Flts[1] != 7.0 {
		t.Fatalf("mean: %v", mean.Flts)
	}
	r = mustExec(t, c, `SELECT MIN(amount), MAX(amount), COUNT(amount) FROM sales`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("ungrouped aggregate rows: %d", r.Table.NumRows())
	}
	if got := r.Table.Cols[0].Ints[0]; got != 5 {
		t.Fatalf("min: %d", got)
	}
	r = mustExec(t, c, `SELECT SUM(amount) / COUNT(*) FROM sales`)
	if got := r.Table.Cols[0].Ints[0]; got != 10 {
		t.Fatalf("sum/count: %d", got)
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE e (i INTEGER)`)
	r := mustExec(t, c, `SELECT COUNT(*) AS n, SUM(i) AS s FROM e`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	if got := intCol(t, r.Table, "n"); got[0] != 0 {
		t.Fatalf("count: %v", got)
	}
	s, _ := r.Table.Column("s")
	if !s.IsNull(0) {
		t.Fatal("SUM over empty should be NULL")
	}
}

func TestCopyInto(t *testing.T) {
	c := newTestConn()
	fs := core.NewMemFS(map[string]string{"data.csv": "1\n2\n3\n"})
	c.DB.FS = fs
	mustExec(t, c, `CREATE TABLE n (i INTEGER)`)
	r := mustExec(t, c, `COPY INTO n FROM 'data.csv'`)
	if r.Msg != "COPY 3" {
		t.Fatalf("msg: %s", r.Msg)
	}
	r = mustExec(t, c, `SELECT SUM(i) FROM n`)
	if r.Table.Cols[0].Ints[0] != 6 {
		t.Fatalf("sum: %v", r.Table.Cols[0].Ints)
	}
}

func TestLimitAndSubquery(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (5), (3), (8), (1)`)
	r := mustExec(t, c, `SELECT i FROM (SELECT i FROM t WHERE i > 2) sub ORDER BY i LIMIT 2`)
	if got := intCol(t, r.Table, "i"); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("rows: %v", got)
	}
	// scalar subquery in expression
	r = mustExec(t, c, `SELECT i FROM t WHERE i = (SELECT MAX(i) FROM t)`)
	if got := intCol(t, r.Table, "i"); len(got) != 1 || got[0] != 8 {
		t.Fatalf("scalar subquery: %v", got)
	}
}

// TestScalarUDFListing4 registers the paper's buggy mean_deviation UDF
// through SQL and evaluates it operator-at-a-time over a full column.
func TestScalarUDFListing4(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE numbers (i INTEGER)`)
	mustExec(t, c, `INSERT INTO numbers VALUES (1), (2), (3), (4), (100)`)
	mustExec(t, c, `CREATE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation;
};`)
	r := mustExec(t, c, `SELECT mean_deviation(i) FROM numbers`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	v := r.Table.Cols[0].Flts[0]
	if v > 1e-9 || v < -1e-9 {
		t.Fatalf("buggy deviation should be ~0, got %v", v)
	}
	// fix the bug via CREATE OR REPLACE (the traditional workflow)
	mustExec(t, c, `CREATE OR REPLACE FUNCTION mean_deviation(column INTEGER)
RETURNS DOUBLE LANGUAGE PYTHON {
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += abs(column[i] - mean)
    return distance / len(column);
};`)
	r = mustExec(t, c, `SELECT mean_deviation(i) FROM numbers`)
	if got := r.Table.Cols[0].Flts[0]; got != 31.2 {
		t.Fatalf("fixed deviation = %v, want 31.2", got)
	}
}

func TestScalarUDFVectorReturn(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, c, `CREATE FUNCTION double_it(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    result = []
    for v in x:
        result.append(v * 2)
    return result
}`)
	r := mustExec(t, c, `SELECT double_it(i) AS d, i FROM t`)
	if got := intCol(t, r.Table, "d"); len(got) != 3 || got[2] != 6 {
		t.Fatalf("doubled: %v", got)
	}
	// scalar result broadcast alongside full column
	mustExec(t, c, `CREATE FUNCTION col_sum(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return sum(x)
}`)
	r = mustExec(t, c, `SELECT i, col_sum(i) AS total FROM t`)
	if got := intCol(t, r.Table, "total"); len(got) != 3 || got[0] != 6 || got[2] != 6 {
		t.Fatalf("broadcast: %v", got)
	}
}

// TestTableUDFListing5 runs the paper's buggy CSV loader as a table
// function: the range(0, len-1) bug silently drops the last file.
func TestTableUDFListing5(t *testing.T) {
	c := newTestConn()
	c.DB.FS = core.NewMemFS(map[string]string{
		"csvs/a.csv": "1\n2\n",
		"csvs/b.csv": "3\n",
		"csvs/c.csv": "100\n",
	})
	mustExec(t, c, `CREATE FUNCTION loadNumbers(path STRING)
RETURNS TABLE(i INTEGER)
LANGUAGE PYTHON {
    import os
    files = os.listdir(path)
    result = []
    for i in range(0, len(files) - 1):
        file = open(path + "/" + files[i], "r")
        for line in file:
            result.append(int(line))
    return result
};`)
	r := mustExec(t, c, `SELECT * FROM loadNumbers('csvs')`)
	if got := intCol(t, r.Table, "i"); len(got) != 3 {
		t.Fatalf("buggy loader should skip c.csv: %v", got)
	}
	r = mustExec(t, c, `SELECT SUM(i) AS s FROM loadNumbers('csvs')`)
	if got := intCol(t, r.Table, "s"); got[0] != 6 {
		t.Fatalf("sum: %v", got)
	}
}

// TestNestedUDFListing3 reproduces §2.3: find_best_classifier issues
// loopback queries through _conn, one of which calls the train_rnforest
// UDF — a nested UDF invocation.
func TestNestedUDFListing3(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE trainingset (data DOUBLE, labels INTEGER)`)
	mustExec(t, c, `INSERT INTO trainingset VALUES
		(0.1, 0), (0.2, 0), (0.15, 0), (9.8, 0), (10.1, 0), (10.0, 0),
		(5.0, 1), (5.1, 1), (4.9, 1), (5.05, 1)`)
	mustExec(t, c, `CREATE TABLE testingset (data DOUBLE, labels INTEGER)`)
	mustExec(t, c, `INSERT INTO testingset VALUES
		(0.12, 0), (10.05, 0), (5.02, 1), (4.95, 1), (0.18, 0)`)
	mustExec(t, c, `CREATE FUNCTION train_rnforest(data DOUBLE, labels INTEGER, n_estimators INTEGER)
RETURNS TABLE(clf BLOB, estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    from sklearn.ensemble import RandomForestClassifier
    clf = RandomForestClassifier(n_estimators)
    clf.fit(data, labels)
    return {'clf': pickle.dumps(clf), 'estimators': n_estimators}
};`)
	mustExec(t, c, `CREATE FUNCTION find_best_classifier(esttest INTEGER)
RETURNS TABLE(clf BLOB, n_estimators INTEGER) LANGUAGE PYTHON {
    import pickle
    import numpy
    (tdata, tlabels) = _conn.execute("""SELECT data, labels FROM testingset""")
    best_classifier = None
    best_classifier_answers = -1
    best_estimator = -1
    for estimator in range(1, esttest + 1):
        res = _conn.execute("""
            SELECT * FROM train_rnforest((SELECT data, labels FROM trainingset), %d)
        """ % estimator)
        classifier = pickle.loads(res['clf'])
        predictions = classifier.predict(tdata)
        correct_pred = []
        for i in range(0, len(predictions)):
            correct_pred.append(predictions[i] == tlabels[i])
        correct_ans = numpy.sum(correct_pred)
        if correct_ans > best_classifier_answers:
            best_classifier = classifier
            best_classifier_answers = correct_ans
            best_estimator = estimator
    return {'clf': pickle.dumps(best_classifier), 'n_estimators': best_estimator}
};`)
	r := mustExec(t, c, `SELECT n_estimators FROM find_best_classifier(3)`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	best := intCol(t, r.Table, "n_estimators")[0]
	// class 0 is bimodal (clusters at 0 and 10): one centroid per class
	// cannot beat two.
	if best < 2 {
		t.Fatalf("best n_estimators = %d, expected >= 2", best)
	}
}

func TestTupleAtATimeMode(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, c, `CREATE FUNCTION inc(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return x + 1
}`)
	c.DB.Mode = ModeTupleAtATime
	r := mustExec(t, c, `SELECT inc(i) AS j FROM t`)
	if got := intCol(t, r.Table, "j"); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("tuple mode: %v", got)
	}
	// The same function body works in both modes when written per-row;
	// operator mode passes the whole column, so x + 1 fails on a list.
	c.DB.Mode = ModeOperatorAtATime
	if _, err := c.Exec(`SELECT inc(i) FROM t`); err == nil {
		t.Fatal("operator mode passes a list; x + 1 should fail")
	}
}

func TestUDFRuntimeErrorSurfacesAsSQLError(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `CREATE FUNCTION boom(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    return unknown_variable
}`)
	err := execErr(t, c, `SELECT boom(i) FROM t`)
	if !strings.Contains(err.Error(), "unknown_variable") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err: %v", err)
	}
	if core.KindOf(err) != core.KindRuntime {
		t.Fatalf("kind: %v", core.KindOf(err))
	}
}

func TestUDFSyntaxErrorAtCallTime(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE FUNCTION bad(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    if x
        return 1
}`)
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	err := execErr(t, c, `SELECT bad(i) FROM t`)
	if core.KindOf(err) != core.KindSyntax {
		t.Fatalf("kind: %v (%v)", core.KindOf(err), err)
	}
}

func TestSysFunctionsThroughSQL(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE FUNCTION f1(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return x }`)
	mustExec(t, c, `CREATE FUNCTION f2(y DOUBLE) RETURNS DOUBLE LANGUAGE PYTHON { return y }`)
	r := mustExec(t, c, `SELECT name, func FROM sys.functions ORDER BY name`)
	names, _ := r.Table.Column("name")
	if len(names.Strs) != 2 || names.Strs[0] != "f1" || names.Strs[1] != "f2" {
		t.Fatalf("names: %v", names.Strs)
	}
	r = mustExec(t, c, `SELECT name FROM sys.functions WHERE name = 'f2'`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("filtered meta query: %d rows", r.Table.NumRows())
	}
}

func TestExtractFunction(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE numbers (i INTEGER)`)
	mustExec(t, c, `INSERT INTO numbers VALUES (1), (2), (3), (4), (5)`)
	mustExec(t, c, `CREATE FUNCTION mean_deviation(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON {
    return 0.0
}`)
	r := mustExec(t, c, `SELECT * FROM sys_extract('mean_deviation', 'c=0;e=0;s=0;r=0', (SELECT i FROM numbers))`)
	if r.Table.NumRows() != 1 {
		t.Fatalf("rows: %d", r.Table.NumRows())
	}
	payload, _ := r.Table.Column("payload")
	udf, params, total, sample, err := DecodeExtractPayload(payload.Blobs[0], c.Password)
	if err != nil {
		t.Fatal(err)
	}
	if udf != "mean_deviation" || total != 5 || sample != 5 {
		t.Fatalf("envelope: %s %d %d", udf, total, sample)
	}
	colV, ok := params.GetStr("column")
	if !ok {
		t.Fatal("params missing 'column'")
	}
	if colV.Repr() != "[1, 2, 3, 4, 5]" {
		t.Fatalf("column data: %s", colV.Repr())
	}
}

func TestExtractWithSampleCompressEncrypt(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE numbers (i INTEGER)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO numbers VALUES (0)`)
	for i := 1; i < 100; i++ {
		sb.WriteString(", (")
		sb.WriteString(strings.Repeat("", 0))
		sb.WriteString(itoa(i))
		sb.WriteString(")")
	}
	mustExec(t, c, sb.String())
	mustExec(t, c, `CREATE FUNCTION f(column INTEGER) RETURNS DOUBLE LANGUAGE PYTHON { return 0.0 }`)
	r := mustExec(t, c, `SELECT * FROM sys_extract('f', 'c=1;e=1;s=10;r=42', (SELECT i FROM numbers))`)
	compressed, _ := r.Table.Column("compressed")
	encrypted, _ := r.Table.Column("encrypted")
	sampleRows, _ := r.Table.Column("sample_rows")
	totalRows, _ := r.Table.Column("total_rows")
	if !compressed.Bools[0] || !encrypted.Bools[0] {
		t.Fatal("flags should be set")
	}
	if totalRows.Ints[0] != 100 || sampleRows.Ints[0] != 10 {
		t.Fatalf("rows: total=%d sample=%d", totalRows.Ints[0], sampleRows.Ints[0])
	}
	payload, _ := r.Table.Column("payload")
	// wrong password fails to decode
	if _, _, _, _, err := DecodeExtractPayload(payload.Blobs[0], "wrong-password"); err == nil {
		t.Fatal("wrong password should fail to unpack")
	}
	_, params, _, _, err := DecodeExtractPayload(payload.Blobs[0], c.Password)
	if err != nil {
		t.Fatal(err)
	}
	colV, _ := params.GetStr("column")
	if !strings.HasPrefix(colV.Repr(), "[") || strings.Count(colV.Repr(), ",") != 9 {
		t.Fatalf("sampled column should have 10 values: %s", colV.Repr())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestPrintDebuggingDiscardedByDefault(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2)`)
	mustExec(t, c, `CREATE FUNCTION noisy(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    print("debugging", len(x))
    return sum(x)
}`)
	mustExec(t, c, `SELECT noisy(i) FROM t`)
}

func TestUDFPrintCapture(t *testing.T) {
	c := newTestConn()
	c.DB.UDFOutput = &bytes.Buffer{}
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (7)`)
	mustExec(t, c, `CREATE FUNCTION p(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON {
    print("value is", x)
    return x
}`)
	mustExec(t, c, `SELECT p(i) FROM t`)
	// a column argument arrives as a list even with one row
	if got := c.DB.UDFOutput.String(); !strings.Contains(got, "value is [7]") {
		t.Fatalf("print output: %q", got)
	}
}

func TestErrorPaths(t *testing.T) {
	c := newTestConn()
	execErr(t, c, `SELECT * FROM missing`)
	execErr(t, c, `SELECT missing_fn(1)`)
	execErr(t, c, `INSERT INTO missing VALUES (1)`)
	execErr(t, c, `DROP TABLE missing`)
	execErr(t, c, `DROP FUNCTION missing`)
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	execErr(t, c, `CREATE TABLE t (i INTEGER)`)
	execErr(t, c, `INSERT INTO t VALUES (1, 2)`)
	execErr(t, c, `SELECT i FROM t WHERE j > 0`)
	execErr(t, c, `COPY INTO t FROM 'missing.csv'`)
	execErr(t, c, `CREATE FUNCTION sys_extract(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return x }`)
	execErr(t, c, `CREATE FUNCTION sum(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return x }`)
}

func TestDropFunctionInvalidatesCache(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `CREATE FUNCTION g(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return 1 }`)
	mustExec(t, c, `SELECT g(i) FROM t`)
	mustExec(t, c, `DROP FUNCTION g`)
	execErr(t, c, `SELECT g(i) FROM t`)
	mustExec(t, c, `CREATE FUNCTION g(x INTEGER) RETURNS INTEGER LANGUAGE PYTHON { return 2 }`)
	r := mustExec(t, c, `SELECT g(i) FROM t`)
	if r.Table.Cols[0].Ints[0] != 2 {
		t.Fatalf("stale compiled UDF: %v", r.Table.Cols[0].Ints)
	}
}

func TestExecAllScript(t *testing.T) {
	c := newTestConn()
	results, err := c.ExecAll(`
CREATE TABLE t (i INTEGER);
INSERT INTO t VALUES (1), (2);
SELECT SUM(i) AS s FROM t;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	if got := intCol(t, results[2].Table, "s"); got[0] != 3 {
		t.Fatalf("sum: %v", got)
	}
}

func TestOrderByNullsAndCast(t *testing.T) {
	c := newTestConn()
	mustExec(t, c, `CREATE TABLE t (i INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (2), (NULL), (1)`)
	r := mustExec(t, c, `SELECT i FROM t ORDER BY i`)
	col, _ := r.Table.Column("i")
	if !col.IsNull(0) || col.Ints[1] != 1 || col.Ints[2] != 2 {
		t.Fatalf("nulls-first order: %v nulls=%v", col.Ints, col.Nulls)
	}
	r = mustExec(t, c, `SELECT CAST(i AS DOUBLE) AS d FROM t WHERE i IS NOT NULL ORDER BY 1`)
	d, _ := r.Table.Column("d")
	if d.Typ != storage.TFloat || d.Flts[0] != 1.0 {
		t.Fatalf("cast: %v %v", d.Typ, d.Flts)
	}
}
