package vec

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func intCol(vals []int64, nulls []bool) *storage.Column {
	return &storage.Column{Typ: storage.TInt, Ints: vals, Nulls: nulls}
}

func fltCol(vals []float64) *storage.Column {
	return &storage.Column{Typ: storage.TFloat, Flts: vals}
}

// TestRunPartitionsExactly verifies every row is visited exactly once
// regardless of worker count and morsel size.
func TestRunPartitionsExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers, morsel int }{
		{0, 4, 8}, {1, 4, 8}, {7, 1, 2}, {100, 4, 8}, {1000, 16, 7}, {1000, 2, 1000}, {999, 3, 100},
	} {
		p := Pol{Workers: tc.workers, MorselSize: tc.morsel}
		seen := make([]int32, tc.n)
		p.Run(tc.n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d w=%d m=%d: row %d visited %d times", tc.n, tc.workers, tc.morsel, i, v)
			}
		}
	}
}

// TestRunErrPropagates: a failing morsel's error surfaces; when every
// failing morsel raises the same error (the engine's case), the result
// is deterministic.
func TestRunErrPropagates(t *testing.T) {
	p := Pol{Workers: 8, MorselSize: 10}
	err := p.RunErr(100, func(lo, hi int) error {
		if lo >= 30 {
			return core.Errorf(core.KindRuntime, "division by zero")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	if err := p.RunErr(100, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("clean run: %v", err)
	}
}

func TestSelectTruthyAndCompareConst(t *testing.T) {
	vals := []int64{5, -1, 0, 9, 3, 0, 7}
	nulls := []bool{false, false, false, true, false, false, false}
	col := intCol(vals, nulls)
	for _, p := range []Pol{Serial, {Workers: 4, MorselSize: 2}} {
		sel, handled := SelectCompareConst(p, CmpGt, col, intCol([]int64{2}, nil))
		if !handled {
			t.Fatal("int/int compare should be fused")
		}
		// rows with v>2 and not null: 0 (5), 4 (3), 6 (7); row 3 is NULL
		if len(sel) != 3 || sel[0] != 0 || sel[1] != 4 || sel[2] != 6 {
			t.Fatalf("sel = %v", sel)
		}
		truthy := SelectTruthy(p, col)
		// non-zero non-null: 0, 1, 4, 6
		if len(truthy) != 4 || truthy[0] != 0 || truthy[1] != 1 || truthy[2] != 4 || truthy[3] != 6 {
			t.Fatalf("truthy = %v", truthy)
		}
	}
	// NULL literal selects nothing
	sel, handled := SelectCompareConst(Serial, CmpEq, col, AllNull(storage.TInt, 1))
	if !handled || len(sel) != 0 {
		t.Fatalf("null literal: handled=%v sel=%v", handled, sel)
	}
	// unsupported pairing falls back
	if _, handled := SelectCompareConst(Serial, CmpEq, col, fltCol([]float64{1})); handled {
		t.Fatal("int col vs float lit should fall back to the generic path")
	}
}

func TestIntersect(t *testing.T) {
	got := Intersect([]int32{1, 3, 5, 7}, []int32{0, 3, 4, 7, 9})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("intersect = %v", got)
	}
	if got := Intersect(nil, []int32{1}); len(got) != 0 {
		t.Fatalf("empty intersect = %v", got)
	}
}

func TestSumCountWithSelection(t *testing.T) {
	col := intCol([]int64{10, 20, 30, 40, 0}, []bool{false, false, false, false, true})
	sel := []int32{1, 2, 4} // 20, 30, NULL
	isum, fsum, cnt, ok := SumCount(Serial, col, sel)
	if !ok || isum != 50 || fsum != 50 || cnt != 2 {
		t.Fatalf("got isum=%d fsum=%v cnt=%d ok=%v", isum, fsum, cnt, ok)
	}
	if _, _, _, ok := SumCount(Serial, &storage.Column{Typ: storage.TStr, Strs: []string{"x"}}, nil); ok {
		t.Fatal("string column must not be summable")
	}
	// parallel morsels merge deterministically
	big := make([]int64, 10_000)
	var want int64
	for i := range big {
		big[i] = int64(i)
		want += int64(i)
	}
	isum, _, cnt, _ = SumCount(Pol{Workers: 4, MorselSize: 128}, intCol(big, nil), nil)
	if isum != want || cnt != int64(len(big)) {
		t.Fatalf("parallel sum = %d (count %d), want %d", isum, cnt, want)
	}
}

func TestMinMaxIdxSemantics(t *testing.T) {
	col := fltCol([]float64{3, 1, 4, 1, 5})
	if best, _ := MinMaxIdx(Serial, col, nil, true); best != 1 {
		t.Fatalf("min idx = %d (equal values must keep the earliest)", best)
	}
	if best, _ := MinMaxIdx(Serial, col, nil, false); best != 4 {
		t.Fatalf("max idx = %d", best)
	}
	// all-NULL view
	nn := intCol([]int64{1, 2}, []bool{true, true})
	if best, _ := MinMaxIdx(Serial, nn, nil, true); best != -1 {
		t.Fatalf("all-null min idx = %d", best)
	}
	// blob: one non-NULL row aggregates, two error (reference semantics)
	blob := &storage.Column{Typ: storage.TBlob, Blobs: [][]byte{{1}, nil}, Nulls: []bool{false, true}}
	if best, err := MinMaxIdx(Serial, blob, nil, true); err != nil || best != 0 {
		t.Fatalf("single blob: best=%d err=%v", best, err)
	}
	blob2 := &storage.Column{Typ: storage.TBlob, Blobs: [][]byte{{1}, {2}}}
	if _, err := MinMaxIdx(Serial, blob2, nil, true); err == nil {
		t.Fatal("two blobs must refuse to compare")
	}
}

func TestGroupsFirstAppearanceOrder(t *testing.T) {
	keys := &storage.Column{Typ: storage.TStr, Strs: []string{"b", "a", "b", "c", "a", "b"}}
	groups := Groups(Serial, []*storage.Column{keys}, 6)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	// first appearance: b, a, c
	if keys.Strs[groups[0][0]] != "b" || keys.Strs[groups[1][0]] != "a" || keys.Strs[groups[2][0]] != "c" {
		t.Fatalf("group order broken: %v", groups)
	}
	if len(groups[0]) != 3 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Fatalf("group sizes: %v", groups)
	}
}

func TestGroupsNullAndFloatSemantics(t *testing.T) {
	// NULLs form one group; NaNs form one group; +0 and -0 stay separate
	// (matching the historical formatted keys "0" vs "-0")
	f := &storage.Column{
		Typ:   storage.TFloat,
		Flts:  []float64{math.NaN(), 0, math.Copysign(0, -1), math.NaN(), 0, 1},
		Nulls: []bool{false, false, false, false, true, false},
	}
	groups := Groups(Serial, []*storage.Column{f}, 6)
	// groups: NaN{0,3}, +0{1}, -0{2}, NULL{4}, 1{5}
	if len(groups) != 5 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 {
		t.Fatalf("NaNs must group together: %v", groups)
	}
}

func TestDistinctReps(t *testing.T) {
	c1 := intCol([]int64{1, 2, 1, 3, 2}, nil)
	c2 := &storage.Column{Typ: storage.TBool, Bools: []bool{true, true, true, false, true}}
	reps := DistinctReps(Serial, []*storage.Column{c1, c2}, 5)
	if len(reps) != 3 || reps[0] != 0 || reps[1] != 1 || reps[2] != 3 {
		t.Fatalf("reps = %v", reps)
	}
}

// TestArithDivZeroNullRows: division by zero on a NULL row must not
// error, on a live row it must.
func TestArithDivZeroNullRows(t *testing.T) {
	l := intCol([]int64{10, 20}, nil)
	rNull := intCol([]int64{2, 0}, []bool{false, true})
	out, err := Arith(Serial, OpDiv, l, rNull, 2)
	if err != nil {
		t.Fatalf("null divisor row must not error: %v", err)
	}
	if out.Ints[0] != 5 || !out.IsNull(1) {
		t.Fatalf("out = %v nulls=%v", out.Ints, out.Nulls)
	}
	rZero := intCol([]int64{2, 0}, nil)
	if _, err := Arith(Serial, OpDiv, l, rZero, 2); err == nil {
		t.Fatal("live zero divisor must error")
	}
}

// TestPoolReuse exercises the scratch pool across concurrent borrowers.
func TestPoolReuse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				f := GetFloats(1000)
				for i := range f {
					f[i] = float64(i)
				}
				PutFloats(f)
				b := GetBools(1000)
				b[0] = true
				PutBools(b)
			}
		}()
	}
	wg.Wait()
}

func TestAlign(t *testing.T) {
	if _, err := Align(intCol(make([]int64, 3), nil), intCol(make([]int64, 4), nil)); err == nil {
		t.Fatal("length mismatch must error")
	}
	n, err := Align(intCol(make([]int64, 1), nil), intCol(make([]int64, 9), nil))
	if err != nil || n != 9 {
		t.Fatalf("broadcast align: n=%d err=%v", n, err)
	}
}
