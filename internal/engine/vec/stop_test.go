package vec

import (
	"sync/atomic"
	"testing"
)

// TestStopHaltsInlineRun: a tripped Stop leaves remaining morsels
// unclaimed on the single-worker path.
func TestStopHaltsInlineRun(t *testing.T) {
	var ran atomic.Int64
	var stop atomic.Bool
	p := Pol{Workers: 1, MorselSize: 10, Stop: stop.Load}
	p.RunIdx(100, func(m, lo, hi int) {
		ran.Add(1)
		if m == 2 {
			stop.Store(true)
		}
	})
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d morsels after stop at morsel 2, want 3", got)
	}
}

// TestStopHaltsParallelRun: every worker observes Stop at its next claim
// and exits without touching the remaining ranges.
func TestStopHaltsParallelRun(t *testing.T) {
	var ran atomic.Int64
	var stop atomic.Bool
	p := Pol{Workers: 4, MorselSize: 1, Stop: stop.Load}
	p.RunIdx(10_000, func(m, lo, hi int) {
		if ran.Add(1) == 5 {
			stop.Store(true)
		}
	})
	// At most one in-flight morsel per worker can slip past the trip.
	if got := ran.Load(); got > 5+4 {
		t.Fatalf("ran %d morsels after stop, want at most 9", got)
	}
}

// TestStopPreTripped: a Stop already tripped runs nothing at all.
func TestStopPreTripped(t *testing.T) {
	var ran atomic.Int64
	p := Pol{Workers: 4, MorselSize: 8, Stop: func() bool { return true }}
	p.RunIdx(1000, func(m, lo, hi int) { ran.Add(1) })
	if got := ran.Load(); got != 0 {
		t.Fatalf("ran %d morsels with pre-tripped stop, want 0", got)
	}
}
