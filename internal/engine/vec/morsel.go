package vec

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Package-level execution counters: morsel scheduling is the engine's
// hottest control path, so it keeps raw atomics here and the metrics
// registry reads them at scrape time (engine.EnableObs). The inline path
// pays two uncontended atomic adds per kernel call; the parallel path
// additionally accounts per-worker busy time.
var (
	statMorsels      atomic.Int64
	statInlineRuns   atomic.Int64
	statParallelRuns atomic.Int64
	statBusyNanos    atomic.Int64
)

// Stats is a snapshot of the package execution counters.
type Stats struct {
	// Morsels is the total number of morsels executed.
	Morsels int64
	// InlineRuns counts kernel dispatches that ran on the query goroutine.
	InlineRuns int64
	// ParallelRuns counts kernel dispatches that fanned out to workers.
	ParallelRuns int64
	// WorkerBusyNanos accumulates wall time workers spent executing
	// morsels in parallel runs — utilization is its rate over cores.
	WorkerBusyNanos int64
}

// StatsSnapshot reads the execution counters without synchronization
// beyond the atomics themselves.
func StatsSnapshot() Stats {
	return Stats{
		Morsels:         statMorsels.Load(),
		InlineRuns:      statInlineRuns.Load(),
		ParallelRuns:    statParallelRuns.Load(),
		WorkerBusyNanos: statBusyNanos.Load(),
	}
}

// DefaultMorselSize is the number of rows one worker claims at a time.
// Morsels are small enough to load-balance skewed work and large enough
// that per-morsel scheduling overhead disappears against the kernel loop.
const DefaultMorselSize = 16 << 10

// Pol is the execution policy a kernel call runs under: how many workers
// may execute morsels concurrently and how many rows each morsel holds.
// The zero value means "all cores, default morsel size"; Serial pins
// execution to the calling goroutine.
type Pol struct {
	// Workers caps concurrent morsel executors. <=0 selects GOMAXPROCS;
	// 1 disables parallelism.
	Workers int
	// MorselSize is the rows-per-morsel split. <=0 selects
	// DefaultMorselSize.
	MorselSize int
	// Stop, when non-nil, is polled at every morsel boundary; once it
	// returns true no further morsels start (in-flight morsels finish).
	// A stopped run leaves unclaimed morsel ranges untouched, so callers
	// that arm Stop must re-check their stop condition before consuming
	// results. The dormant cost is one nil-check per morsel.
	Stop func() bool
}

// Serial executes every kernel inline on the calling goroutine.
var Serial = Pol{Workers: 1}

func (p Pol) workers() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// NumWorkers returns the effective worker count (GOMAXPROCS when
// Workers <= 0).
func (p Pol) NumWorkers() int { return p.workers() }

// Morsel returns the effective rows-per-morsel split.
func (p Pol) Morsel() int {
	if p.MorselSize <= 0 {
		return DefaultMorselSize
	}
	return p.MorselSize
}

// NumMorsels returns how many morsels n rows split into (at least 1 for
// n > 0).
func (p Pol) NumMorsels(n int) int {
	m := p.Morsel()
	return (n + m - 1) / m
}

// Run executes fn over [0,n) split into morsels. Workers claim morsels
// from a shared counter (morsel-driven scheduling); fn must only touch
// state local to its [lo,hi) range. Small inputs run inline.
func (p Pol) Run(n int, fn func(lo, hi int)) {
	p.RunIdx(n, func(_, lo, hi int) { fn(lo, hi) })
}

// RunIdx is Run with the morsel index passed through — the hook for
// two-phase kernels (count per morsel, prefix-sum, fill per morsel) and
// per-morsel partial aggregates that merge deterministically in morsel
// order.
func (p Pol) RunIdx(n int, fn func(m, lo, hi int)) {
	if n <= 0 {
		return
	}
	w, ms := p.workers(), p.Morsel()
	nm := (n + ms - 1) / ms
	if w > nm {
		w = nm
	}
	statMorsels.Add(int64(nm))
	if w <= 1 {
		statInlineRuns.Add(1)
		for m := 0; m < nm; m++ {
			if p.Stop != nil && p.Stop() {
				return
			}
			lo := m * ms
			hi := lo + ms
			if hi > n {
				hi = n
			}
			fn(m, lo, hi)
		}
		return
	}
	statParallelRuns.Add(1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			for {
				if p.Stop != nil && p.Stop() {
					statBusyNanos.Add(int64(time.Since(t0)))
					return
				}
				m := int(next.Add(1) - 1)
				if m >= nm {
					statBusyNanos.Add(int64(time.Since(t0)))
					return
				}
				lo := m * ms
				hi := lo + ms
				if hi > n {
					hi = n
				}
				fn(m, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// RunErr is Run for fallible kernels: once any morsel fails, remaining
// morsels are cancelled and the earliest recorded error (in morsel
// order) is returned. Engine kernels raise the same error text from any
// morsel ("division by zero"), so which morsel reports first is not
// observable through the SQL surface.
func (p Pol) RunErr(n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	nm := p.NumMorsels(n)
	var failed atomic.Bool
	errs := make([]error, nm)
	p.RunIdx(n, func(m, lo, hi int) {
		if failed.Load() {
			return
		}
		if err := fn(lo, hi); err != nil {
			errs[m] = err
			failed.Store(true)
		}
	})
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- shared column-buffer pool ----
//
// Kernels borrow scratch vectors (float promotions, truthiness masks,
// per-morsel counters) from a process-wide pool instead of allocating per
// call. Only transient buffers go through the pool; result columns own
// their slices.

var (
	f64Pool  = sync.Pool{New: func() any { s := make([]float64, 0, DefaultMorselSize); return &s }}
	boolPool = sync.Pool{New: func() any { s := make([]bool, 0, DefaultMorselSize); return &s }}
)

// GetFloats borrows a float64 scratch buffer of length n.
func GetFloats(n int) []float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return (*p)[:n]
}

// PutFloats returns a borrowed float64 buffer to the pool.
func PutFloats(s []float64) {
	f64Pool.Put(&s)
}

// GetBools borrows a bool scratch buffer of length n.
func GetBools(n int) []bool {
	p := boolPool.Get().(*[]bool)
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	return (*p)[:n]
}

// PutBools returns a borrowed bool buffer to the pool.
func PutBools(s []bool) {
	boolPool.Put(&s)
}
