package vec

import (
	"cmp"

	"repro/internal/storage"
)

// A selection vector is a []int32 of qualifying row indexes, ascending.
// WHERE produces one; projection, aggregation and LIMIT consume it
// lazily, deferring row materialization to result build. nil means "all
// rows".
//
// Builders run one branchless pass per morsel: every row writes its
// index into the morsel's output region and the cursor advances by the
// predicate bit (no unpredictable branch at ~50% selectivity), then the
// regions compact with memmoves. Morsels fill disjoint regions, so the
// output stays in ascending row order regardless of scheduling.

// b2i converts a predicate bit without a branch (the compiler emits
// SETcc for this shape).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// fillCompact runs the region-fill/compact pattern shared by all
// selection builders. fill writes qualifying indexes of [lo,hi) into dst
// (one region per morsel, len hi-lo) and returns how many it wrote.
func fillCompact(p Pol, n int, fill func(dst []int32, lo, hi int) int) []int32 {
	if n == 0 {
		return []int32{}
	}
	nm := p.NumMorsels(n)
	sel := make([]int32, n)
	counts := make([]int, nm)
	p.RunIdx(n, func(m, lo, hi int) { counts[m] = fill(sel[lo:hi], lo, hi) })
	ms := p.Morsel()
	pos := counts[0]
	for m := 1; m < nm; m++ {
		lo := m * ms
		copy(sel[pos:pos+counts[m]], sel[lo:lo+counts[m]])
		pos += counts[m]
	}
	if pos < n/2 {
		// low selectivity: don't pin the full-size backing array
		out := make([]int32, pos)
		copy(out, sel[:pos])
		return out
	}
	return sel[:pos:pos]
}

// SelectTruthy builds the selection of rows where the predicate column
// is truthy (NULL is false).
func SelectTruthy(p Pol, pred *storage.Column) []int32 {
	return fillCompact(p, pred.Len(), func(dst []int32, lo, hi int) int {
		return fillTruthy(dst, pred, lo, hi)
	})
}

func fillTruthy(dst []int32, c *storage.Column, lo, hi int) int {
	switch c.Typ {
	case storage.TBool:
		return fillTrue(dst, c.Bools, c.Nulls, lo, hi)
	case storage.TInt:
		return fillNZ(dst, c.Ints, 0, c.Nulls, lo, hi)
	case storage.TFloat:
		return fillNZ(dst, c.Flts, 0, c.Nulls, lo, hi)
	case storage.TStr:
		return fillNZ(dst, c.Strs, "", c.Nulls, lo, hi)
	default:
		return 0
	}
}

func fillTrue(dst []int32, vals []bool, nulls []bool, lo, hi int) int {
	k := 0
	if nulls == nil {
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(vals[i])
		}
		return k
	}
	for i := lo; i < hi; i++ {
		dst[k] = int32(i)
		k += b2i(vals[i] && !nulls[i])
	}
	return k
}

func fillNZ[T comparable](dst []int32, vals []T, zero T, nulls []bool, lo, hi int) int {
	k := 0
	if nulls == nil {
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(vals[i] != zero)
		}
		return k
	}
	for i := lo; i < hi; i++ {
		dst[k] = int32(i)
		k += b2i(vals[i] != zero && !nulls[i])
	}
	return k
}

// Fusable reports whether SelectCompareConst supports a column/literal
// pairing — the single source of truth planners must consult before
// relying on the fused path (e.g. to short-circuit an AND chain safely).
func Fusable(col, lit *storage.Column) bool {
	if lit.Len() != 1 {
		return false
	}
	if lit.IsNull(0) {
		return true
	}
	switch {
	case col.Typ == storage.TInt && lit.Typ == storage.TInt:
		return true
	case col.Typ == storage.TFloat && Numeric(lit.Typ):
		return true
	case col.Typ == storage.TStr && lit.Typ == storage.TStr:
		return true
	default:
		return false
	}
}

// SelectCompareConst is the fused filter fast path: column-vs-constant
// comparison emitting the selection directly, with no intermediate bool
// column. handled=false falls back to the generic predicate path
// (unsupported type pairing, per Fusable). NULL rows never qualify; a
// NULL constant selects nothing.
func SelectCompareConst(p Pol, op CmpOp, col, lit *storage.Column) (sel []int32, handled bool) {
	if !Fusable(col, lit) {
		return nil, false
	}
	if lit.IsNull(0) {
		return []int32{}, true
	}
	switch {
	case col.Typ == storage.TInt && lit.Typ == storage.TInt:
		return selCmp(p, op, col.Ints, lit.Ints[0], col.Nulls), true
	case col.Typ == storage.TFloat && Numeric(lit.Typ):
		return selCmp(p, op, col.Flts, litFloat(lit), col.Nulls), true
	default:
		return selCmp(p, op, col.Strs, lit.Strs[0], col.Nulls), true
	}
}

func litFloat(lit *storage.Column) float64 {
	switch lit.Typ {
	case storage.TFloat:
		return lit.Flts[0]
	case storage.TInt:
		return float64(lit.Ints[0])
	default:
		if lit.Bools[0] {
			return 1
		}
		return 0
	}
}

func selCmp[T cmp.Ordered](p Pol, op CmpOp, vals []T, c T, nulls []bool) []int32 {
	return fillCompact(p, len(vals), func(dst []int32, lo, hi int) int {
		return fillCmp(op, dst, vals, c, nulls, lo, hi)
	})
}

// fillCmp dispatches the operator (and NULL-freeness) once, then runs a
// branchless write-all/advance-by-bit loop. Like cmpVV/cmpVS, the
// predicates are built from < and > only so float NaN semantics match
// the scalar reference's three-way compareAt (NaN lands on cmp==0).
func fillCmp[T cmp.Ordered](op CmpOp, dst []int32, vals []T, c T, nulls []bool, lo, hi int) int {
	k := 0
	if nulls == nil {
		switch op {
		case CmpEq:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(!(vals[i] < c || vals[i] > c))
			}
		case CmpNe:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(vals[i] < c || vals[i] > c)
			}
		case CmpLt:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(vals[i] < c)
			}
		case CmpLe:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(!(vals[i] > c))
			}
		case CmpGt:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(vals[i] > c)
			}
		case CmpGe:
			for i := lo; i < hi; i++ {
				dst[k] = int32(i)
				k += b2i(!(vals[i] < c))
			}
		}
		return k
	}
	switch op {
	case CmpEq:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(!(vals[i] < c || vals[i] > c) && !nulls[i])
		}
	case CmpNe:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i((vals[i] < c || vals[i] > c) && !nulls[i])
		}
	case CmpLt:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(vals[i] < c && !nulls[i])
		}
	case CmpLe:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(!(vals[i] > c) && !nulls[i])
		}
	case CmpGt:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(vals[i] > c && !nulls[i])
		}
	case CmpGe:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(!(vals[i] < c) && !nulls[i])
		}
	}
	return k
}

// Intersect merges two ascending selections — how an AND of fused
// filter conjuncts combines without re-scanning.
func Intersect(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
