package vec

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/storage"
)

// Typed aggregation kernels. Each consumes a base column plus an
// optional selection vector — the filtered-aggregate hot path never
// materializes the filtered rows at all. Morsel-parallel runs accumulate
// per-morsel partials and merge them in morsel order, so results are
// deterministic for a given policy.

// rows returns the logical domain size: the selection length, or the
// column length when sel is nil.
func rows(c *storage.Column, sel []int32) int {
	if sel != nil {
		return len(sel)
	}
	return c.Len()
}

// CountNotNull counts non-NULL rows in the logical view.
func CountNotNull(p Pol, c *storage.Column, sel []int32) int64 {
	n := rows(c, sel)
	if c.Nulls == nil {
		return int64(n)
	}
	nm := p.NumMorsels(n)
	parts := make([]int64, nm)
	p.RunIdx(n, func(m, lo, hi int) {
		k := int64(0)
		if sel != nil {
			for _, si := range sel[lo:hi] {
				if !c.Nulls[si] {
					k++
				}
			}
		} else {
			for _, v := range c.Nulls[lo:hi] {
				if !v {
					k++
				}
			}
		}
		parts[m] = k
	})
	total := int64(0)
	for _, k := range parts {
		total += k
	}
	return total
}

type numPart struct {
	isum  int64
	fsum  float64
	count int64
}

// SumCount accumulates SUM/AVG state over the logical view exactly like
// the scalar reference: fsum adds float64(v) per row (a single-morsel
// run is bit-identical to the per-row loop; once the view spans several
// morsels, float addition reassociates at the morsel merges and may
// differ in the last ulp), isum carries the exact integer sum for int
// columns, count is the non-NULL row count.
// ok=false flags a non-numeric column; the caller errors only when rows
// exist (an empty column aggregates to NULL without a type error).
func SumCount(p Pol, c *storage.Column, sel []int32) (isum int64, fsum float64, count int64, ok bool) {
	if !Numeric(c.Typ) {
		return 0, 0, 0, false
	}
	n := rows(c, sel)
	nm := p.NumMorsels(n)
	parts := make([]numPart, nm)
	p.RunIdx(n, func(m, lo, hi int) {
		parts[m] = sumPart(c, sel, lo, hi)
	})
	for _, pt := range parts {
		isum += pt.isum
		fsum += pt.fsum
		count += pt.count
	}
	return isum, fsum, count, true
}

func sumPart(c *storage.Column, sel []int32, lo, hi int) numPart {
	var pt numPart
	nulls := c.Nulls
	switch c.Typ {
	case storage.TInt:
		if sel != nil {
			for _, si := range sel[lo:hi] {
				if nulls != nil && nulls[si] {
					continue
				}
				v := c.Ints[si]
				pt.isum += v
				pt.fsum += float64(v)
				pt.count++
			}
		} else if nulls != nil {
			for i := lo; i < hi; i++ {
				if nulls[i] {
					continue
				}
				v := c.Ints[i]
				pt.isum += v
				pt.fsum += float64(v)
				pt.count++
			}
		} else {
			for _, v := range c.Ints[lo:hi] {
				pt.isum += v
				pt.fsum += float64(v)
			}
			pt.count = int64(hi - lo)
		}
	case storage.TFloat:
		if sel != nil {
			for _, si := range sel[lo:hi] {
				if nulls != nil && nulls[si] {
					continue
				}
				pt.fsum += c.Flts[si]
				pt.count++
			}
		} else if nulls != nil {
			for i := lo; i < hi; i++ {
				if nulls[i] {
					continue
				}
				pt.fsum += c.Flts[i]
				pt.count++
			}
		} else {
			for _, v := range c.Flts[lo:hi] {
				pt.fsum += v
			}
			pt.count = int64(hi - lo)
		}
	case storage.TBool:
		if sel != nil {
			for _, si := range sel[lo:hi] {
				if nulls != nil && nulls[si] {
					continue
				}
				if c.Bools[si] {
					pt.fsum++
				}
				pt.count++
			}
		} else {
			for i := lo; i < hi; i++ {
				if nulls != nil && nulls[i] {
					continue
				}
				if c.Bools[i] {
					pt.fsum++
				}
				pt.count++
			}
		}
	}
	return pt
}

// MinMaxIdx returns the index (into the base column) of the MIN or MAX
// row of the logical view, -1 when every row is NULL. Equal values keep
// the earliest row (strict comparison), and float NaNs never replace a
// best — both matching the scalar reference's compareAt loop.
func MinMaxIdx(p Pol, c *storage.Column, sel []int32, wantMin bool) (int, error) {
	n := rows(c, sel)
	switch c.Typ {
	case storage.TInt:
		return minMaxOrdered(p, c.Ints, c.Nulls, sel, n, wantMin), nil
	case storage.TFloat:
		return minMaxOrdered(p, c.Flts, c.Nulls, sel, n, wantMin), nil
	case storage.TStr:
		return minMaxOrdered(p, c.Strs, c.Nulls, sel, n, wantMin), nil
	case storage.TBool:
		return minMaxBool(c, sel, n, wantMin), nil
	default:
		// The scalar reference only errors once it compares two non-NULL
		// rows; 0 or 1 non-NULL blob rows aggregate fine.
		best := -1
		for i := 0; i < n; i++ {
			pi := phys(sel, i)
			if c.IsNull(pi) {
				continue
			}
			if best >= 0 {
				return 0, core.Errorf(core.KindType, "cannot compare %s with %s", c.Typ, c.Typ)
			}
			best = pi
		}
		return best, nil
	}
}

func phys(sel []int32, i int) int {
	if sel != nil {
		return int(sel[i])
	}
	return i
}

func minMaxOrdered[T cmp.Ordered](p Pol, vals []T, nulls []bool, sel []int32, n int, wantMin bool) int {
	nm := p.NumMorsels(n)
	parts := make([]int, nm)
	p.RunIdx(n, func(m, lo, hi int) {
		best := -1
		for i := lo; i < hi; i++ {
			pi := i
			if sel != nil {
				pi = int(sel[i])
			}
			if nulls != nil && nulls[pi] {
				continue
			}
			if best < 0 {
				best = pi
				continue
			}
			if wantMin {
				if vals[pi] < vals[best] {
					best = pi
				}
			} else {
				if vals[pi] > vals[best] {
					best = pi
				}
			}
		}
		parts[m] = best
	})
	best := -1
	for _, pb := range parts {
		if pb < 0 {
			continue
		}
		if best < 0 {
			best = pb
			continue
		}
		if wantMin {
			if vals[pb] < vals[best] {
				best = pb
			}
		} else {
			if vals[pb] > vals[best] {
				best = pb
			}
		}
	}
	return best
}

// minMaxBool follows the numeric coercion of the scalar reference
// (false=0, true=1), keeping the earliest extremum.
func minMaxBool(c *storage.Column, sel []int32, n int, wantMin bool) int {
	best := -1
	for i := 0; i < n; i++ {
		pi := phys(sel, i)
		if c.Nulls != nil && c.Nulls[pi] {
			continue
		}
		if best < 0 {
			best = pi
			continue
		}
		if wantMin {
			if !c.Bools[pi] && c.Bools[best] {
				best = pi
			}
		} else {
			if c.Bools[pi] && !c.Bools[best] {
				best = pi
			}
		}
	}
	return best
}
