package vec

import (
	"bytes"
	"math"

	"repro/internal/storage"
)

// Typed group-key hashing: GROUP BY and DISTINCT hash key-column vectors
// directly instead of formatting every row through a strings.Builder.
// Hashes are computed morsel-parallel; group insertion is a single
// ordered pass so group order follows first appearance exactly.

const (
	nullHash   = 0x9e3779b97f4a7c15 // distinct marker for NULL cells
	fnvOffset  = 0xcbf29ce484222325
	fnvPrime   = 0x100000001b3
	canonicNaN = 0x7ff8000000000001 // all NaN payloads group together
)

// splitmix64 is the finalizer that mixes one cell hash into a row hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashStr(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// floatBits normalizes NaNs to one payload so every NaN lands in one
// group; +0 and -0 keep distinct bits, matching the historical
// format-based keys ("0" vs "-0").
func floatBits(v float64) uint64 {
	if v != v {
		return canonicNaN
	}
	return math.Float64bits(v)
}

// hashRowsInto combines one column's cell hashes into the row hashes,
// type dispatch outside the loop.
func hashRowsInto(p Pol, h []uint64, c *storage.Column) {
	nulls := c.Nulls
	switch c.Typ {
	case storage.TInt:
		p.Run(len(h), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := uint64(c.Ints[i])
				if nulls != nil && nulls[i] {
					k = nullHash
				}
				h[i] = splitmix64(h[i] ^ k)
			}
		})
	case storage.TFloat:
		p.Run(len(h), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := floatBits(c.Flts[i])
				if nulls != nil && nulls[i] {
					k = nullHash
				}
				h[i] = splitmix64(h[i] ^ k)
			}
		})
	case storage.TStr:
		p.Run(len(h), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := hashStr(c.Strs[i])
				if nulls != nil && nulls[i] {
					k = nullHash
				}
				h[i] = splitmix64(h[i] ^ k)
			}
		})
	case storage.TBool:
		p.Run(len(h), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := uint64(0)
				if c.Bools[i] {
					k = 1
				}
				if nulls != nil && nulls[i] {
					k = nullHash
				}
				h[i] = splitmix64(h[i] ^ k)
			}
		})
	case storage.TBlob:
		p.Run(len(h), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				k := hashBytes(c.Blobs[i])
				if nulls != nil && nulls[i] {
					k = nullHash
				}
				h[i] = splitmix64(h[i] ^ k)
			}
		})
	}
}

// cellEqual compares one cell across two rows with grouping semantics:
// NULLs equal each other, NaNs equal each other, +0 ≠ -0.
func cellEqual(c *storage.Column, a, b int) bool {
	an, bn := c.IsNull(a), c.IsNull(b)
	if an || bn {
		return an && bn
	}
	switch c.Typ {
	case storage.TInt:
		return c.Ints[a] == c.Ints[b]
	case storage.TFloat:
		return floatBits(c.Flts[a]) == floatBits(c.Flts[b])
	case storage.TStr:
		return c.Strs[a] == c.Strs[b]
	case storage.TBool:
		return c.Bools[a] == c.Bools[b]
	case storage.TBlob:
		return bytes.Equal(c.Blobs[a], c.Blobs[b])
	default:
		return false
	}
}

func rowsEqual(cols []*storage.Column, a, b int) bool {
	for _, c := range cols {
		if !cellEqual(c, a, b) {
			return false
		}
	}
	return true
}

// Groups partitions n rows by the key columns (all dense, length n),
// returning per-group row-index lists in first-appearance order.
func Groups(p Pol, cols []*storage.Column, n int) [][]int32 {
	hs := make([]uint64, n)
	for _, c := range cols {
		hashRowsInto(p, hs, c)
	}
	index := make(map[uint64][]int32, n/4+1)
	var groups [][]int32
	var reps []int32
	for i := 0; i < n; i++ {
		gi := int32(-1)
		for _, cand := range index[hs[i]] {
			if rowsEqual(cols, int(reps[cand]), i) {
				gi = cand
				break
			}
		}
		if gi < 0 {
			gi = int32(len(groups))
			groups = append(groups, nil)
			reps = append(reps, int32(i))
			index[hs[i]] = append(index[hs[i]], gi)
		}
		groups[gi] = append(groups[gi], int32(i))
	}
	return groups
}

// DistinctReps returns the first-occurrence row index of each distinct
// row — the DISTINCT kernel, which needs no member lists.
func DistinctReps(p Pol, cols []*storage.Column, n int) []int32 {
	hs := make([]uint64, n)
	for _, c := range cols {
		hashRowsInto(p, hs, c)
	}
	index := make(map[uint64][]int32, n/4+1)
	var reps []int32
	for i := 0; i < n; i++ {
		dup := false
		for _, cand := range index[hs[i]] {
			if rowsEqual(cols, int(cand), i) {
				dup = true
				break
			}
		}
		if !dup {
			index[hs[i]] = append(index[hs[i]], int32(i))
			reps = append(reps, int32(i))
		}
	}
	return reps
}
