// Package vec is the vectorized execution core of the monetlite engine:
// type-specialized kernels over storage.Column vectors, selection vectors
// produced by filters and consumed lazily downstream, typed group-key
// hashing, and morsel-driven parallelism shared by built-in operators and
// UDF batches.
//
// Every kernel dispatches on operator and type once, outside the loop,
// and then runs a tight loop over pre-sized slices — the inverse of the
// engine's historical per-row `at(i)` closures and per-row `switch op`.
// Kernels preserve the scalar reference semantics exactly: SQL
// three-valued NULL propagation for arithmetic and comparisons, truthy
// (NULL-is-false) semantics for AND/OR and WHERE, division-by-zero errors
// only for rows that are not NULL, and type errors only when at least one
// row would actually evaluate (an all-NULL or empty operand never raises).
package vec

import (
	"cmp"
	"math"

	"repro/internal/core"
	"repro/internal/storage"
)

// ArithOp is a vectorized arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String renders the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "%"
	}
}

// CmpOp is a vectorized comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Mirror swaps the operand order of a comparison (a < b ⇔ b > a).
func (op CmpOp) Mirror() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op
	}
}

type number interface{ int64 | float64 }

// Align returns the broadcast-aligned row count of two operands
// (length-1 columns broadcast to the other's length).
func Align(l, r *storage.Column) (int, error) {
	ln, rn := l.Len(), r.Len()
	switch {
	case ln == rn:
		return ln, nil
	case ln == 1:
		return rn, nil
	case rn == 1:
		return ln, nil
	default:
		return 0, core.Errorf(core.KindConstraint,
			"column length mismatch: %d vs %d", ln, rn)
	}
}

// Numeric reports whether a column type participates in arithmetic
// (booleans coerce to 0/1, matching the scalar reference).
func Numeric(t storage.Type) bool {
	return t == storage.TInt || t == storage.TFloat || t == storage.TBool
}

// AllNull returns an n-row column of the given type with every row NULL.
//
//colinvariant:zeroed emptyTyped pre-sizes zeroed value buffers, so every slot under the bitmap is already zero
func AllNull(typ storage.Type, n int) *storage.Column {
	out := emptyTyped(typ, n)
	if n > 0 {
		out.Nulls = make([]bool, n)
		for i := range out.Nulls {
			out.Nulls[i] = true
		}
	}
	return out
}

// emptyTyped returns a column with a pre-sized (zeroed) value vector.
func emptyTyped(typ storage.Type, n int) *storage.Column {
	out := &storage.Column{Typ: typ}
	switch typ {
	case storage.TInt:
		out.Ints = make([]int64, n)
	case storage.TFloat:
		out.Flts = make([]float64, n)
	case storage.TStr:
		out.Strs = make([]string, n)
	case storage.TBool:
		out.Bools = make([]bool, n)
	case storage.TBlob:
		out.Blobs = make([][]byte, n)
	}
	return out
}

// scalarNull reports whether either operand is a NULL constant — the
// whole result is NULL then, before any type or zero-divisor checks
// (matching the scalar reference's per-row null-first ordering).
func scalarNull(l, r *storage.Column) bool {
	return (l.Len() == 1 && l.IsNull(0)) || (r.Len() == 1 && r.IsNull(0))
}

// combinedNulls builds the output validity of a null-propagating binary
// op: true where either input row is NULL. Returns nil when no row is.
func combinedNulls(n int, l, r *storage.Column) []bool {
	var out []bool
	any := false
	for _, c := range []*storage.Column{l, r} {
		if c.Nulls == nil {
			continue
		}
		if c.Len() == 1 {
			if c.Nulls[0] {
				// scalar NULL: short-circuited by callers, but be total
				out = make([]bool, n)
				for i := range out {
					out[i] = true
				}
				return out
			}
			continue
		}
		if out == nil {
			out = make([]bool, n)
		}
		for i, v := range c.Nulls {
			if v {
				out[i] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return out
}

// anyBothPresent reports whether some aligned row has both operands
// non-NULL — the condition under which the scalar reference would have
// reached a type check at all.
func anyBothPresent(n int, l, r *storage.Column) bool {
	if n == 0 {
		return false
	}
	lb, rb := l.Len() == 1, r.Len() == 1
	for i := 0; i < n; i++ {
		li, ri := i, i
		if lb {
			li = 0
		}
		if rb {
			ri = 0
		}
		if !l.IsNull(li) && !r.IsNull(ri) {
			return true
		}
	}
	return false
}

func errDivZero() error { return core.Errorf(core.KindRuntime, "division by zero") }

// floatView returns the column's values as a float64 vector, converting
// ints and bools through a pooled scratch buffer (pooled=true — caller
// must PutFloats after the kernel).
func floatView(c *storage.Column) (vals []float64, pooled bool) {
	switch c.Typ {
	case storage.TFloat:
		return c.Flts, false
	case storage.TInt:
		out := GetFloats(len(c.Ints))
		for i, v := range c.Ints {
			out[i] = float64(v)
		}
		return out, true
	default: // TBool, pre-validated numeric
		out := GetFloats(len(c.Bools))
		for i, v := range c.Bools {
			if v {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return out, true
	}
}

// ---- arithmetic ----

// Arith evaluates l op r over n broadcast-aligned rows. Both-int inputs
// use exact int64 kernels; any other numeric mix promotes to float64.
func Arith(p Pol, op ArithOp, l, r *storage.Column, n int) (*storage.Column, error) {
	bothInt := l.Typ == storage.TInt && r.Typ == storage.TInt
	resTyp := storage.TFloat
	if bothInt {
		resTyp = storage.TInt
	}
	if n == 0 {
		return emptyTyped(resTyp, 0), nil
	}
	if !Numeric(l.Typ) || !Numeric(r.Typ) {
		if anyBothPresent(n, l, r) {
			return nil, core.Errorf(core.KindType,
				"cannot apply %q to %s and %s", op.String(), l.Typ, r.Typ)
		}
		return AllNull(storage.TFloat, n), nil
	}
	if scalarNull(l, r) {
		return AllNull(resTyp, n), nil
	}
	nulls := combinedNulls(n, l, r)
	if bothInt {
		out := &storage.Column{Typ: storage.TInt, Ints: make([]int64, n), Nulls: nulls}
		var err error
		if op == OpMod {
			err = modInt(p, out.Ints, l.Ints, r.Ints, nulls, n)
		} else {
			err = arithVec(p, op, out.Ints, l.Ints, r.Ints, nulls, n)
		}
		if err != nil {
			return nil, err
		}
		zeroUnderNulls(p, out.Ints, nulls)
		return out, nil
	}
	lv, lp := floatView(l)
	rv, rp := floatView(r)
	out := &storage.Column{Typ: storage.TFloat, Flts: make([]float64, n), Nulls: nulls}
	var err error
	if op == OpMod {
		err = modFlt(p, out.Flts, lv, rv, nulls, n)
	} else {
		err = arithVec(p, op, out.Flts, lv, rv, nulls, n)
	}
	if lp {
		PutFloats(lv)
	}
	if rp {
		PutFloats(rv)
	}
	if err != nil {
		return nil, err
	}
	zeroUnderNulls(p, out.Flts, nulls)
	return out, nil
}

// zeroUnderNulls resets the values beneath NULL rows to the zero value.
// The branch-free kernels compute garbage there (harmless to the
// engine's IsNull-first accessors), but raw vectors cross the zero-copy
// GO-UDF boundary where NULLs are contractually Go zero values, and the
// scalar reference's AppendNull stores zeros — this keeps outputs
// bit-identical.
//
//vec:hot
func zeroUnderNulls[T comparable](p Pol, dst []T, nulls []bool) {
	if nulls == nil {
		return
	}
	var zero T
	p.Run(len(dst), func(lo, hi int) {
		d, ns := dst[lo:hi], nulls[lo:hi]
		for i, nv := range ns {
			if nv {
				d[i] = zero
			}
		}
	})
}

// arithVec dispatches op (Add/Sub/Mul/Div — Mod is per-type) and the
// operand shape once, then runs tight generic loops morsel-parallel
// (disjoint output ranges, no locking).
//
//vec:hot
func arithVec[T number](p Pol, op ArithOp, dst, a, b []T, nulls []bool, n int) error {
	av, bv := len(a) == n, len(b) == n
	switch op {
	case OpAdd:
		switch {
		case av && bv:
			p.Run(n, func(lo, hi int) { addVV(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		case av:
			p.Run(n, func(lo, hi int) { addVS(dst[lo:hi], a[lo:hi], b[0]) })
		default:
			p.Run(n, func(lo, hi int) { addVS(dst[lo:hi], b[lo:hi], a[0]) })
		}
	case OpSub:
		switch {
		case av && bv:
			p.Run(n, func(lo, hi int) { subVV(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		case av:
			p.Run(n, func(lo, hi int) { subVS(dst[lo:hi], a[lo:hi], b[0]) })
		default:
			p.Run(n, func(lo, hi int) { subSV(dst[lo:hi], a[0], b[lo:hi]) })
		}
	case OpMul:
		switch {
		case av && bv:
			p.Run(n, func(lo, hi int) { mulVV(dst[lo:hi], a[lo:hi], b[lo:hi]) })
		case av:
			p.Run(n, func(lo, hi int) { mulVS(dst[lo:hi], a[lo:hi], b[0]) })
		default:
			p.Run(n, func(lo, hi int) { mulVS(dst[lo:hi], b[lo:hi], a[0]) })
		}
	case OpDiv:
		switch {
		case av && bv:
			return p.RunErr(n, func(lo, hi int) error {
				return divVV(dst[lo:hi], a[lo:hi], b[lo:hi], subNulls(nulls, lo, hi))
			})
		case av:
			return divVS(p, dst, a, b[0], nulls, n)
		default:
			return p.RunErr(n, func(lo, hi int) error {
				return divSV(dst[lo:hi], a[0], b[lo:hi], subNulls(nulls, lo, hi))
			})
		}
	}
	return nil
}

func subNulls(nulls []bool, lo, hi int) []bool {
	if nulls == nil {
		return nil
	}
	return nulls[lo:hi]
}

// Branch-free kernels for the ops that cannot fail. NULL rows compute
// harmless garbage over zero values; the validity bitmap masks them.

//vec:hot
func addVV[T number](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

//vec:hot
func addVS[T number](dst, a []T, b T) {
	for i := range dst {
		dst[i] = a[i] + b
	}
}

//vec:hot
func subVV[T number](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

//vec:hot
func subVS[T number](dst, a []T, b T) {
	for i := range dst {
		dst[i] = a[i] - b
	}
}

//vec:hot
func subSV[T number](dst []T, a T, b []T) {
	for i := range dst {
		dst[i] = a - b[i]
	}
}

//vec:hot
func mulVV[T number](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

//vec:hot
func mulVS[T number](dst, a []T, b T) {
	for i := range dst {
		dst[i] = a[i] * b
	}
}

// Division and modulo check the divisor per row; a zero divisor errors
// unless the row is NULL (the scalar reference never reaches the check
// on NULL rows).

//vec:hot
func divVV[T number](dst, a, b []T, nulls []bool) error {
	for i := range dst {
		if b[i] == 0 {
			if nulls != nil && nulls[i] {
				continue
			}
			return errDivZero()
		}
		dst[i] = a[i] / b[i]
	}
	return nil
}

//vec:hot
func divSV[T number](dst []T, a T, b []T, nulls []bool) error {
	for i := range dst {
		if b[i] == 0 {
			if nulls != nil && nulls[i] {
				continue
			}
			return errDivZero()
		}
		dst[i] = a / b[i]
	}
	return nil
}

// divVS handles a constant divisor: the zero check hoists out of the
// loop entirely (a zero divisor errors iff any row is non-NULL).
//
//vec:hot
func divVS[T number](p Pol, dst, a []T, b T, nulls []bool, n int) error {
	if b == 0 {
		return scalarZeroDivisor(nulls, n)
	}
	p.Run(n, func(lo, hi int) {
		d, s := dst[lo:hi], a[lo:hi]
		for i := range d {
			d[i] = s[i] / b
		}
	})
	return nil
}

// modInt is integer modulo over the three operand shapes.
//
//vec:hot
func modInt(p Pol, dst, a, b []int64, nulls []bool, n int) error {
	av, bv := len(a) == n, len(b) == n
	switch {
	case av && bv:
		return p.RunErr(n, func(lo, hi int) error {
			return modIntVV(dst[lo:hi], a[lo:hi], b[lo:hi], subNulls(nulls, lo, hi))
		})
	case av:
		if b[0] == 0 {
			return scalarZeroDivisor(nulls, n)
		}
		c := b[0]
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], a[lo:hi]
			for i := range d {
				d[i] = s[i] % c
			}
		})
		return nil
	default:
		c := a[0]
		return p.RunErr(n, func(lo, hi int) error {
			d, s := dst[lo:hi], b[lo:hi]
			ns := subNulls(nulls, lo, hi)
			for i := range d {
				if s[i] == 0 {
					if ns != nil && ns[i] {
						continue
					}
					return errDivZero()
				}
				d[i] = c % s[i]
			}
			return nil
		})
	}
}

//vec:hot
func modIntVV(dst, a, b []int64, nulls []bool) error {
	for i := range dst {
		if b[i] == 0 {
			if nulls != nil && nulls[i] {
				continue
			}
			return errDivZero()
		}
		dst[i] = a[i] % b[i]
	}
	return nil
}

// modFlt is float modulo (math.Mod) over the three operand shapes.
//
//vec:hot
func modFlt(p Pol, dst, a, b []float64, nulls []bool, n int) error {
	av, bv := len(a) == n, len(b) == n
	switch {
	case av && bv:
		return p.RunErr(n, func(lo, hi int) error {
			return modFltVV(dst[lo:hi], a[lo:hi], b[lo:hi], subNulls(nulls, lo, hi))
		})
	case av:
		if b[0] == 0 {
			return scalarZeroDivisor(nulls, n)
		}
		c := b[0]
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], a[lo:hi]
			for i := range d {
				d[i] = math.Mod(s[i], c)
			}
		})
		return nil
	default:
		c := a[0]
		return p.RunErr(n, func(lo, hi int) error {
			d, s := dst[lo:hi], b[lo:hi]
			ns := subNulls(nulls, lo, hi)
			for i := range d {
				if s[i] == 0 {
					if ns != nil && ns[i] {
						continue
					}
					return errDivZero()
				}
				d[i] = math.Mod(c, s[i])
			}
			return nil
		})
	}
}

//vec:hot
func modFltVV(dst, a, b []float64, nulls []bool) error {
	for i := range dst {
		if b[i] == 0 {
			if nulls != nil && nulls[i] {
				continue
			}
			return errDivZero()
		}
		dst[i] = math.Mod(a[i], b[i])
	}
	return nil
}

// scalarZeroDivisor resolves the constant-divisor-is-zero case: an error
// iff any row is non-NULL (an all-NULL column never reaches the check).
func scalarZeroDivisor(nulls []bool, n int) error {
	if nulls == nil {
		if n == 0 {
			return nil
		}
		return errDivZero()
	}
	for i := 0; i < n; i++ {
		if !nulls[i] {
			return errDivZero()
		}
	}
	return nil
}

// ---- comparisons ----

// Compare evaluates l op r over n broadcast-aligned rows with SQL
// three-valued semantics (NULL operands yield NULL). Both-int inputs
// compare exactly; numeric mixes promote to float64; strings compare
// lexicographically.
func Compare(p Pol, op CmpOp, l, r *storage.Column, n int) (*storage.Column, error) {
	if n == 0 {
		return emptyTyped(storage.TBool, 0), nil
	}
	if scalarNull(l, r) {
		return AllNull(storage.TBool, n), nil
	}
	bothInt := l.Typ == storage.TInt && r.Typ == storage.TInt
	bothNum := Numeric(l.Typ) && Numeric(r.Typ)
	bothStr := l.Typ == storage.TStr && r.Typ == storage.TStr
	if !bothNum && !bothStr {
		if anyBothPresent(n, l, r) {
			return nil, core.Errorf(core.KindType,
				"cannot compare %s with %s", l.Typ, r.Typ)
		}
		return AllNull(storage.TBool, n), nil
	}
	out := &storage.Column{
		Typ:   storage.TBool,
		Bools: make([]bool, n),
		Nulls: combinedNulls(n, l, r),
	}
	switch {
	case bothInt:
		cmpVec(p, op, out.Bools, l.Ints, r.Ints, n)
	case bothStr:
		cmpVec(p, op, out.Bools, l.Strs, r.Strs, n)
	default:
		lv, lp := floatView(l)
		rv, rp := floatView(r)
		cmpVec(p, op, out.Bools, lv, rv, n)
		if lp {
			PutFloats(lv)
		}
		if rp {
			PutFloats(rv)
		}
	}
	zeroUnderNulls(p, out.Bools, out.Nulls)
	return out, nil
}

// cmpVec dispatches op and shape once, then runs per-op tight loops.
//
//vec:hot
func cmpVec[T cmp.Ordered](p Pol, op CmpOp, dst []bool, a, b []T, n int) {
	switch {
	case len(a) == n && len(b) == n:
		p.Run(n, func(lo, hi int) { cmpVV(op, dst[lo:hi], a[lo:hi], b[lo:hi]) })
	case len(b) == 1:
		p.Run(n, func(lo, hi int) { cmpVS(op, dst[lo:hi], a[lo:hi], b[0]) })
	default:
		op = op.Mirror()
		p.Run(n, func(lo, hi int) { cmpVS(op, dst[lo:hi], b[lo:hi], a[0]) })
	}
}

// The comparison loops are written in terms of < and > only, matching
// the scalar reference's three-way compareAt exactly: a float NaN is
// neither less nor greater, so it lands on cmp==0 — NaN "equals"
// anything, <= and >= hold, < and > do not. For ints and strings these
// formulations reduce to the direct operators.

//vec:hot
func cmpVV[T cmp.Ordered](op CmpOp, dst []bool, a, b []T) {
	switch op {
	case CmpEq:
		for i := range dst {
			dst[i] = !(a[i] < b[i] || a[i] > b[i])
		}
	case CmpNe:
		for i := range dst {
			dst[i] = a[i] < b[i] || a[i] > b[i]
		}
	case CmpLt:
		for i := range dst {
			dst[i] = a[i] < b[i]
		}
	case CmpLe:
		for i := range dst {
			dst[i] = !(a[i] > b[i])
		}
	case CmpGt:
		for i := range dst {
			dst[i] = a[i] > b[i]
		}
	case CmpGe:
		for i := range dst {
			dst[i] = !(a[i] < b[i])
		}
	}
}

//vec:hot
func cmpVS[T cmp.Ordered](op CmpOp, dst []bool, a []T, b T) {
	switch op {
	case CmpEq:
		for i := range dst {
			dst[i] = !(a[i] < b || a[i] > b)
		}
	case CmpNe:
		for i := range dst {
			dst[i] = a[i] < b || a[i] > b
		}
	case CmpLt:
		for i := range dst {
			dst[i] = a[i] < b
		}
	case CmpLe:
		for i := range dst {
			dst[i] = !(a[i] > b)
		}
	case CmpGt:
		for i := range dst {
			dst[i] = a[i] > b
		}
	case CmpGe:
		for i := range dst {
			dst[i] = !(a[i] < b)
		}
	}
}

// ---- boolean logic ----

// TruthyInto writes the truthiness of each of the column's n
// broadcast-aligned rows into dst: NULL is false, numbers are non-zero,
// strings non-empty (the WHERE/AND/OR semantics of the scalar
// reference).
//
//vec:hot
func TruthyInto(p Pol, dst []bool, c *storage.Column, n int) {
	if c.Len() == 1 && n != 1 {
		v := truthyScalar(c)
		p.Run(n, func(lo, hi int) {
			d := dst[lo:hi]
			for i := range d {
				d[i] = v
			}
		})
		return
	}
	switch c.Typ {
	case storage.TBool:
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], c.Bools[lo:hi]
			copy(d, s)
			maskNulls(d, c.Nulls, lo, hi)
		})
	case storage.TInt:
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], c.Ints[lo:hi]
			for i := range d {
				d[i] = s[i] != 0
			}
			maskNulls(d, c.Nulls, lo, hi)
		})
	case storage.TFloat:
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], c.Flts[lo:hi]
			for i := range d {
				d[i] = s[i] != 0
			}
			maskNulls(d, c.Nulls, lo, hi)
		})
	case storage.TStr:
		p.Run(n, func(lo, hi int) {
			d, s := dst[lo:hi], c.Strs[lo:hi]
			for i := range d {
				d[i] = s[i] != ""
			}
			maskNulls(d, c.Nulls, lo, hi)
		})
	default: // TBlob is never truthy, matching the scalar reference
		p.Run(n, func(lo, hi int) {
			d := dst[lo:hi]
			for i := range d {
				d[i] = false
			}
		})
	}
}

//vec:hot
func maskNulls(d []bool, nulls []bool, lo, hi int) {
	if nulls == nil {
		return
	}
	for i, v := range nulls[lo:hi] {
		if v {
			d[i] = false
		}
	}
}

func truthyScalar(c *storage.Column) bool {
	if c.IsNull(0) {
		return false
	}
	switch c.Typ {
	case storage.TBool:
		return c.Bools[0]
	case storage.TInt:
		return c.Ints[0] != 0
	case storage.TFloat:
		return c.Flts[0] != 0
	case storage.TStr:
		return c.Strs[0] != ""
	default:
		return false
	}
}

// Logic evaluates AND/OR over truthy masks. The result is never NULL
// (NULL operands count as false), matching the scalar reference.
func Logic(p Pol, and bool, l, r *storage.Column, n int) *storage.Column {
	out := &storage.Column{Typ: storage.TBool, Bools: make([]bool, n)}
	if n == 0 {
		return out
	}
	TruthyInto(p, out.Bools, l, n)
	rm := GetBools(n)
	TruthyInto(p, rm, r, n)
	if and {
		p.Run(n, func(lo, hi int) {
			d, s := out.Bools[lo:hi], rm[lo:hi]
			for i := range d {
				d[i] = d[i] && s[i]
			}
		})
	} else {
		p.Run(n, func(lo, hi int) {
			d, s := out.Bools[lo:hi], rm[lo:hi]
			for i := range d {
				d[i] = d[i] || s[i]
			}
		})
	}
	PutBools(rm) //poolescape:ignore rm is only borrowed by the synchronous p.Run closures above
	return out
}

// Not negates truthiness per row; NULL rows stay NULL (scalar NOT
// propagates NULL, unlike AND/OR).
func Not(p Pol, x *storage.Column) *storage.Column {
	n := x.Len()
	out := &storage.Column{Typ: storage.TBool, Bools: make([]bool, n)}
	if n == 0 {
		return out
	}
	TruthyInto(p, out.Bools, x, n)
	p.Run(n, func(lo, hi int) {
		d := out.Bools[lo:hi]
		for i := range d {
			d[i] = !d[i]
		}
	})
	if x.Nulls != nil {
		out.Nulls = append([]bool(nil), x.Nulls...)
		zeroUnderNulls(p, out.Bools, out.Nulls)
	}
	return out
}

// Neg negates a numeric column, propagating NULLs. A non-numeric column
// errors only if it has a non-NULL row (the scalar reference checks the
// type per non-NULL row).
func Neg(p Pol, x *storage.Column) (*storage.Column, error) {
	n := x.Len()
	switch x.Typ {
	case storage.TInt:
		out := &storage.Column{Typ: storage.TInt, Ints: make([]int64, n)}
		p.Run(n, func(lo, hi int) {
			d, s := out.Ints[lo:hi], x.Ints[lo:hi]
			for i := range d {
				d[i] = -s[i]
			}
		})
		copyNegNulls(p, out, x)
		return out, nil
	case storage.TFloat:
		out := &storage.Column{Typ: storage.TFloat, Flts: make([]float64, n)}
		p.Run(n, func(lo, hi int) {
			d, s := out.Flts[lo:hi], x.Flts[lo:hi]
			for i := range d {
				d[i] = -s[i]
			}
		})
		copyNegNulls(p, out, x)
		return out, nil
	default:
		for i := 0; i < n; i++ {
			if !x.IsNull(i) {
				return nil, core.Errorf(core.KindType, "cannot negate %s", x.Typ)
			}
		}
		return AllNull(x.Typ, n), nil
	}
}

// copyNegNulls copies the validity bitmap and zeroes values under NULLs
// (the scalar reference appends zero values for NULL rows).
func copyNegNulls(p Pol, out, x *storage.Column) {
	if x.Nulls == nil {
		return
	}
	out.Nulls = append([]bool(nil), x.Nulls...)
	switch out.Typ {
	case storage.TInt:
		zeroUnderNulls(p, out.Ints, out.Nulls)
	case storage.TFloat:
		zeroUnderNulls(p, out.Flts, out.Nulls)
	}
}

// IsNull builds the IS [NOT] NULL mask for a column — a tight loop over
// the validity bitmap, never NULL itself.
func IsNull(p Pol, x *storage.Column, neg bool) *storage.Column {
	n := x.Len()
	out := &storage.Column{Typ: storage.TBool, Bools: make([]bool, n)}
	if x.Nulls == nil {
		if neg {
			for i := range out.Bools {
				out.Bools[i] = true
			}
		}
		return out
	}
	p.Run(n, func(lo, hi int) {
		d, s := out.Bools[lo:hi], x.Nulls[lo:hi]
		for i := range d {
			d[i] = s[i] != neg
		}
	})
	return out
}
