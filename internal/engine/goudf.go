package engine

import (
	"strings"

	"repro/internal/udfrt/gort"
)

// RegisterGoUDF registers a typed Go function as a native UDF in one step:
// the implementation goes into the process-wide GO runtime table and the
// matching catalog entry (parameter/result types inferred by reflection) is
// created — CREATE OR REPLACE semantics. SQL can then call it like any
// other UDF:
//
//	db.RegisterGoUDF("haversine", func(lat1, lon1, lat2, lon2 []float64) []float64 { ... })
//	conn.Exec(`SELECT haversine(a, b, c, d) FROM coords`)
//
// For custom parameter names or a hand-written declaration, register the
// implementation with gort.Register and issue CREATE FUNCTION ... LANGUAGE
// GO yourself.
//
// Argument slices are read-only: the zero-copy fast path may pass the
// stored table's backing vectors. Allocate fresh slices for results.
func (db *DB) RegisterGoUDF(name string, fn any) error {
	if err := gort.Register(name, fn); err != nil {
		return err
	}
	def, err := gort.InferDef(name, fn)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.compiled, strings.ToLower(name))
	return db.cat.CreateFunction(def, true)
}
