package engine

import (
	"strings"

	"repro/internal/udfrt/gort"
)

// RegisterGoUDF registers a typed Go function as a native UDF in one step:
// the implementation goes into the process-wide GO runtime table and the
// matching catalog entry (parameter/result types inferred by reflection) is
// created — CREATE OR REPLACE semantics. SQL can then call it like any
// other UDF:
//
//	db.RegisterGoUDF("haversine", func(lat1, lon1, lat2, lon2 []float64) []float64 { ... })
//	conn.Exec(`SELECT haversine(a, b, c, d) FROM coords`)
//
// For custom parameter names or a hand-written declaration, register the
// implementation with gort.Register and issue CREATE FUNCTION ... LANGUAGE
// GO yourself.
//
// Argument slices are read-only: the zero-copy fast path may pass the
// stored table's backing vectors. Allocate fresh slices for results.
func (db *DB) RegisterGoUDF(name string, fn any) error {
	return db.registerGoUDF(name, fn, false)
}

// RegisterGoUDFElementwise is RegisterGoUDF for functions that are
// element-wise (row i of the result depends only on row i of the
// arguments) and safe to call from multiple goroutines: the engine may
// split their batches into morsels executed across workers, so calls
// scale with cores. Batch-dependent implementations (prefix sums,
// stateful closures) must use RegisterGoUDF, which keeps whole-batch
// semantics.
func (db *DB) RegisterGoUDFElementwise(name string, fn any) error {
	return db.registerGoUDF(name, fn, true)
}

func (db *DB) registerGoUDF(name string, fn any, elementwise bool) error {
	var err error
	if elementwise {
		err = gort.RegisterElementwise(name, fn)
	} else {
		err = gort.Register(name, fn)
	}
	if err != nil {
		return err
	}
	def, err := gort.InferDef(name, fn)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.compiled, strings.ToLower(name))
	db.invalidatePlans()
	prior, _ := db.cat.Function(name)
	if err := db.cat.CreateFunction(def, true); err != nil {
		return err
	}
	if err := db.commit(Change{Kind: ChangeRegisterGoUDF, Func: def}); err != nil {
		if prior != nil {
			_ = db.cat.InstallFunction(prior, true)
		} else {
			_ = db.cat.DropFunction(name)
		}
		return err
	}
	return nil
}
