// Package debug implements the interactive debugger devUDF attaches to a
// locally-running UDF — the capability the paper argues UDF developers are
// normally denied because "the RDBMS must be in control of the code flow
// while the UDF is being executed" (§1). It provides breakpoints
// (optionally conditional), step over/into/out, pause, call-stack and
// variable inspection, and watch expressions, built on PyLite's trace hook
// exactly as pydevd builds on CPython's sys.settrace.
//
// A Session can debug either a whole module it owns (NewSession — the local
// devUDF workflow) or an arbitrary run function under an externally-owned
// interpreter (AttachSession — the hook the wire server uses to debug a UDF
// invocation executing inside the database engine).
package debug

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/script"
)

// StopReason explains why execution paused (or ended).
type StopReason string

// Stop reasons.
const (
	ReasonEntry      StopReason = "entry"
	ReasonBreakpoint StopReason = "breakpoint"
	ReasonStep       StopReason = "step"
	ReasonPause      StopReason = "pause"
	ReasonDone       StopReason = "done"
	ReasonException  StopReason = "exception"
	ReasonKilled     StopReason = "killed"
)

// Event is delivered every time the debuggee stops.
type Event struct {
	Reason   StopReason
	Line     int
	FuncName string
	Depth    int
	// Err is set for ReasonException (the script error) and ReasonDone
	// with a failing script.
	Err error
	// Terminal reports that execution has finished and no further control
	// commands are accepted.
	Terminal bool
}

// FrameInfo is one stack entry, innermost first.
type FrameInfo struct {
	FuncName string
	Line     int
	Depth    int
}

// Breakpoint is a line breakpoint with an optional PyLite condition
// evaluated in the paused frame ("i > 3").
type Breakpoint struct {
	Line      int
	Condition string
	HitCount  int
}

// Config configures a Session.
type Config struct {
	// StopOnEntry pauses before the first statement (PyCharm's default
	// when stepping from the gutter).
	StopOnEntry bool
	// Setup runs before execution to configure the interpreter (install
	// FS, module providers, stdout). Module sessions only.
	Setup func(*script.Interp)
	// Globals, when non-nil, pre-populates module scope (the devUDF local
	// runner injects _conn and input parameters). Module sessions only.
	Globals map[string]script.Value
}

type cmdKind int

const (
	cmdContinue cmdKind = iota
	cmdStepOver
	cmdStepInto
	cmdStepOut
	cmdKill
	cmdEval
	cmdLocals
	cmdGlobals
	cmdStack
)

type command struct {
	kind cmdKind
	expr string
	resp chan cmdResult
}

type cmdResult struct {
	value  script.Value
	vars   map[string]script.Value
	frames []FrameInfo
	err    error
}

type stepMode int

const (
	stepNone stepMode = iota
	stepOver
	stepInto
	stepOut
)

// Session debugs one execution under the trace hook. Control methods
// (Continue, Step*, …) are synchronous: they resume the debuggee and return
// the next stop event. A Session supports a single controlling goroutine;
// SetBreakpoint, ClearBreakpoint, RequestPause and Kill are additionally
// safe to call from any goroutine at any time.
type Session struct {
	in    *script.Interp
	lines []string
	run   func() error

	bpMu        sync.Mutex
	breakpoints map[int]*Breakpoint

	cmds      chan command
	events    chan Event
	done      chan struct{} // closed once the terminal state is recorded
	pauseFlag atomic.Bool
	killed    atomic.Bool
	started   atomic.Bool

	// terminal is valid to read after done is closed.
	terminal Event

	// Debuggee-goroutine-only step state.
	mode      stepMode
	modeDepth int

	result      *script.Env
	lastErr     error
	cfgGlobals  map[string]script.Value
	stopOnEntry bool
	sawEntry    bool
}

// NewSession prepares (but does not start) a debug session over mod: the
// session owns a fresh interpreter and runs the module's body.
func NewSession(mod *script.Module, cfg Config) *Session {
	s := newSession(cfg)
	s.lines = mod.Lines
	s.in = script.NewInterp()
	if cfg.Setup != nil {
		cfg.Setup(s.in)
	}
	s.in.Trace = s.trace
	s.cfgGlobals = cfg.Globals
	s.run = func() error {
		globals := s.in.NewGlobals()
		for k, v := range s.cfgGlobals {
			globals.Set(k, v)
		}
		err := s.in.RunInEnv(mod, globals)
		s.result = globals
		return err
	}
	return s
}

// AttachSession prepares a debug session over an arbitrary run function
// executing under an externally-owned interpreter — the wire server uses it
// to debug one UDF invocation inside the engine. The session installs its
// trace hook on in (replacing any existing hook); lines is the source shown
// by Source(). The run function executes on the session's goroutine once
// Start is called.
func AttachSession(in *script.Interp, lines []string, run func() error, cfg Config) *Session {
	s := newSession(cfg)
	s.in = in
	s.lines = lines
	s.run = run
	in.Trace = s.trace
	return s
}

func newSession(cfg Config) *Session {
	s := &Session{
		breakpoints: map[int]*Breakpoint{},
		cmds:        make(chan command),
		events:      make(chan Event),
		done:        make(chan struct{}),
	}
	if cfg.StopOnEntry {
		s.mode = stepInto // pause at the very first line
		s.stopOnEntry = true
	}
	return s
}

// Interp exposes the session's interpreter so embedders can construct
// native objects (the devUDF _conn shim) bound to it before Start.
func (s *Session) Interp() *script.Interp { return s.in }

// SetGlobal injects a module-scope binding before Start (devUDF injects
// _conn this way). It panics if called after Start.
func (s *Session) SetGlobal(name string, v script.Value) {
	if s.started.Load() {
		panic("debug: SetGlobal after Start")
	}
	if s.cfgGlobals == nil {
		s.cfgGlobals = map[string]script.Value{}
	}
	s.cfgGlobals[name] = v
}

// SetBreakpoint sets (or replaces) a breakpoint. Safe from any goroutine,
// including while the debuggee is running.
func (s *Session) SetBreakpoint(line int, condition string) {
	s.bpMu.Lock()
	defer s.bpMu.Unlock()
	s.breakpoints[line] = &Breakpoint{Line: line, Condition: condition}
}

// ClearBreakpoint removes a breakpoint. Safe from any goroutine.
func (s *Session) ClearBreakpoint(line int) {
	s.bpMu.Lock()
	defer s.bpMu.Unlock()
	delete(s.breakpoints, line)
}

// Breakpoints lists breakpoints sorted by line. Safe from any goroutine.
func (s *Session) Breakpoints() []Breakpoint {
	s.bpMu.Lock()
	out := make([]Breakpoint, 0, len(s.breakpoints))
	for _, b := range s.breakpoints {
		out = append(out, *b)
	}
	s.bpMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Source returns the debugged code's source lines (1-based indexing by
// line number: Source()[l-1]).
func (s *Session) Source() []string { return s.lines }

// Start launches the debuggee and returns the first stop event: the entry
// pause when StopOnEntry, otherwise the first breakpoint hit / completion.
func (s *Session) Start() Event {
	if !s.started.CompareAndSwap(false, true) {
		return Event{Reason: ReasonDone, Terminal: true,
			Err: core.Errorf(core.KindConstraint, "session already started")}
	}
	//goleak:bounded terminates when the debuggee script completes or Kill aborts it
	go func() {
		err := s.run()
		s.lastErr = err
		reason := ReasonDone
		if s.killed.Load() {
			reason = ReasonKilled
			err = nil
		}
		s.terminal = Event{Reason: reason, Terminal: true, Err: err}
		close(s.done)
	}()
	return s.waitEvent()
}

// Continue resumes until the next breakpoint, pause request or completion.
func (s *Session) Continue() Event { return s.control(command{kind: cmdContinue}) }

// StepOver resumes until the next line at the same or a shallower depth.
func (s *Session) StepOver() Event { return s.control(command{kind: cmdStepOver}) }

// StepInto resumes until the next line anywhere (entering calls).
func (s *Session) StepInto() Event { return s.control(command{kind: cmdStepInto}) }

// StepOut resumes until control returns to the caller.
func (s *Session) StepOut() Event { return s.control(command{kind: cmdStepOut}) }

// Kill aborts the debuggee and returns the terminal event. Safe from any
// goroutine, concurrently with an in-flight control call.
func (s *Session) Kill() Event {
	if !s.started.Load() || s.Finished() {
		return notPausedEvent()
	}
	s.killed.Store(true)
	for {
		select {
		case s.cmds <- command{kind: cmdKill}:
			// Delivered: the debuggee aborts at this trace event; wait for
			// the terminal state.
			<-s.done
			return s.terminal
		case ev := <-s.events:
			// A stop event raced our kill; the next trace event observes the
			// killed flag, but the debuggee is paused waiting for a command,
			// so keep offering cmdKill.
			_ = ev
		case <-s.done:
			return s.terminal
		}
	}
}

// RequestPause asks a *running* debuggee to stop at its next line. It is
// asynchronous and safe from any goroutine; the pause materializes as a
// ReasonPause event from the in-flight (or next) control call.
func (s *Session) RequestPause() { s.pauseFlag.Store(true) }

// notPausedEvent is the error event for control calls outside a pause:
// before Start or after the terminal event.
func notPausedEvent() Event {
	return Event{Reason: ReasonDone, Terminal: true,
		Err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
}

func (s *Session) control(cmd command) Event {
	if !s.started.Load() || s.Finished() {
		return notPausedEvent()
	}
	select {
	case s.cmds <- cmd:
	case <-s.done:
		return s.terminal
	}
	return s.waitEvent()
}

// waitEvent blocks until the debuggee pauses or terminates.
func (s *Session) waitEvent() Event {
	select {
	case ev := <-s.events:
		return ev
	case <-s.done:
		return s.terminal
	}
}

// Finished reports whether the debuggee has reached its terminal state.
func (s *Session) Finished() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Eval evaluates a watch expression in the paused frame.
func (s *Session) Eval(expr string) (script.Value, error) {
	res := s.inspect(command{kind: cmdEval, expr: expr})
	return res.value, res.err
}

// Locals returns the paused frame's local variables.
func (s *Session) Locals() (map[string]script.Value, error) {
	res := s.inspect(command{kind: cmdLocals})
	return res.vars, res.err
}

// GlobalVars returns the module-level variables.
func (s *Session) GlobalVars() (map[string]script.Value, error) {
	res := s.inspect(command{kind: cmdGlobals})
	return res.vars, res.err
}

// Stack returns the call stack, innermost frame first.
func (s *Session) Stack() ([]FrameInfo, error) {
	res := s.inspect(command{kind: cmdStack})
	return res.frames, res.err
}

func (s *Session) inspect(cmd command) cmdResult {
	if !s.started.Load() || s.Finished() {
		return cmdResult{err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
	}
	cmd.resp = make(chan cmdResult, 1)
	select {
	case s.cmds <- cmd:
	case <-s.done:
		return cmdResult{err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
	}
	select {
	case res := <-cmd.resp:
		return res
	case <-s.done:
		return cmdResult{err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
	}
}

// Result returns the module globals (module sessions; nil for attached
// sessions) and error after the terminal event.
func (s *Session) Result() (*script.Env, error) {
	if !s.Finished() {
		return nil, core.Errorf(core.KindConstraint, "debuggee has not finished")
	}
	return s.result, s.lastErr
}

// errKilled aborts the interpreter from inside the trace hook.
var errKilled = core.Errorf(core.KindRuntime, "killed by debugger")

// trace is the interpreter hook: it decides whether to pause at this event
// and, when paused, processes inspection/control commands until resumed.
func (s *Session) trace(in *script.Interp, ev script.TraceEvent) error {
	if s.killed.Load() {
		return errKilled
	}
	if ev.Kind != script.TraceLine {
		return nil
	}
	if s.Finished() {
		// A stale hook on a reused interpreter (AttachSession embedders):
		// the controller is gone, so pausing would block forever.
		return nil
	}
	reason, stop := s.shouldStop(in, ev)
	if !stop {
		return nil
	}
	s.events <- Event{
		Reason:   reason,
		Line:     ev.Line,
		FuncName: ev.Frame.FuncName,
		Depth:    ev.Frame.Depth,
	}
	for cmd := range s.cmds {
		switch cmd.kind {
		case cmdContinue:
			s.mode = stepNone
			return nil
		case cmdStepOver:
			s.mode = stepOver
			s.modeDepth = ev.Frame.Depth
			return nil
		case cmdStepInto:
			s.mode = stepInto
			return nil
		case cmdStepOut:
			s.mode = stepOut
			s.modeDepth = ev.Frame.Depth
			return nil
		case cmdKill:
			s.killed.Store(true)
			return errKilled
		case cmdEval:
			v, err := in.EvalInFrame(cmd.expr, ev.Frame)
			cmd.resp <- cmdResult{value: v, err: err}
		case cmdLocals:
			cmd.resp <- cmdResult{vars: ev.Frame.Env.Snapshot()}
		case cmdGlobals:
			g := in.Globals
			if g == nil {
				cmd.resp <- cmdResult{vars: map[string]script.Value{}}
			} else {
				cmd.resp <- cmdResult{vars: g.Snapshot()}
			}
		case cmdStack:
			var frames []FrameInfo
			for f := ev.Frame; f != nil; f = f.Caller {
				frames = append(frames, FrameInfo{FuncName: f.FuncName, Line: f.Line, Depth: f.Depth})
			}
			cmd.resp <- cmdResult{frames: frames}
		}
	}
	return nil
}

// shouldStop applies pause requests, step modes and breakpoints, in that
// order of precedence.
func (s *Session) shouldStop(in *script.Interp, ev script.TraceEvent) (StopReason, bool) {
	if s.pauseFlag.Swap(false) {
		s.mode = stepNone
		return ReasonPause, true
	}
	switch s.mode {
	case stepInto:
		s.mode = stepNone
		if s.stopOnEntry && !s.sawEntry {
			s.sawEntry = true
			return ReasonEntry, true
		}
		return ReasonStep, true
	case stepOver:
		if ev.Frame.Depth <= s.modeDepth {
			s.mode = stepNone
			return ReasonStep, true
		}
	case stepOut:
		if ev.Frame.Depth < s.modeDepth {
			s.mode = stepNone
			return ReasonStep, true
		}
	}
	s.bpMu.Lock()
	bp, ok := s.breakpoints[ev.Line]
	var cond string
	if ok {
		cond = bp.Condition
	}
	s.bpMu.Unlock()
	if !ok {
		return "", false
	}
	if cond != "" {
		v, err := in.EvalInFrame(cond, ev.Frame)
		if err != nil || !script.Truthy(v) {
			return "", false
		}
	}
	s.bpMu.Lock()
	if cur, still := s.breakpoints[ev.Line]; still {
		cur.HitCount++
	}
	s.bpMu.Unlock()
	return ReasonBreakpoint, true
}
