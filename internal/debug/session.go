// Package debug implements the interactive debugger devUDF attaches to a
// locally-running UDF — the capability the paper argues UDF developers are
// normally denied because "the RDBMS must be in control of the code flow
// while the UDF is being executed" (§1). It provides breakpoints
// (optionally conditional), step over/into/out, pause, call-stack and
// variable inspection, and watch expressions, built on PyLite's trace hook
// exactly as pydevd builds on CPython's sys.settrace.
package debug

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/script"
)

// StopReason explains why execution paused (or ended).
type StopReason string

// Stop reasons.
const (
	ReasonEntry      StopReason = "entry"
	ReasonBreakpoint StopReason = "breakpoint"
	ReasonStep       StopReason = "step"
	ReasonPause      StopReason = "pause"
	ReasonDone       StopReason = "done"
	ReasonException  StopReason = "exception"
	ReasonKilled     StopReason = "killed"
)

// Event is delivered every time the debuggee stops.
type Event struct {
	Reason   StopReason
	Line     int
	FuncName string
	Depth    int
	// Err is set for ReasonException (the script error) and ReasonDone
	// with a failing script.
	Err error
	// Terminal reports that execution has finished and no further control
	// commands are accepted.
	Terminal bool
}

// FrameInfo is one stack entry, innermost first.
type FrameInfo struct {
	FuncName string
	Line     int
	Depth    int
}

// Breakpoint is a line breakpoint with an optional PyLite condition
// evaluated in the paused frame ("i > 3").
type Breakpoint struct {
	Line      int
	Condition string
	HitCount  int
}

// Config configures a Session.
type Config struct {
	// StopOnEntry pauses before the first statement (PyCharm's default
	// when stepping from the gutter).
	StopOnEntry bool
	// Setup runs before execution to configure the interpreter (install
	// FS, module providers, stdout).
	Setup func(*script.Interp)
	// Globals, when non-nil, pre-populates module scope (the devUDF local
	// runner injects _conn and input parameters).
	Globals map[string]script.Value
}

type cmdKind int

const (
	cmdContinue cmdKind = iota
	cmdStepOver
	cmdStepInto
	cmdStepOut
	cmdKill
	cmdEval
	cmdLocals
	cmdGlobals
	cmdStack
)

type command struct {
	kind cmdKind
	expr string
	resp chan cmdResult
}

type cmdResult struct {
	value  script.Value
	vars   map[string]script.Value
	frames []FrameInfo
	err    error
}

type stepMode int

const (
	stepNone stepMode = iota
	stepOver
	stepInto
	stepOut
)

// Session debugs one PyLite module execution. Control methods (Continue,
// Step*, …) are synchronous: they resume the debuggee and return the next
// stop event. A Session is not safe for concurrent control calls.
type Session struct {
	in  *script.Interp
	mod *script.Module

	breakpoints map[int]*Breakpoint
	cmds        chan command
	events      chan Event
	pauseFlag   atomic.Bool
	killed      atomic.Bool

	mode        stepMode
	modeDepth   int
	started     bool
	finished    bool
	lastErr     error
	result      *script.Env
	cfgGlobals  map[string]script.Value
	stopOnEntry bool
	sawEntry    bool
}

// NewSession prepares (but does not start) a debug session over mod.
func NewSession(mod *script.Module, cfg Config) *Session {
	s := &Session{
		mod:         mod,
		breakpoints: map[int]*Breakpoint{},
		cmds:        make(chan command),
		events:      make(chan Event),
	}
	s.in = script.NewInterp()
	if cfg.Setup != nil {
		cfg.Setup(s.in)
	}
	s.in.Trace = s.trace
	if cfg.StopOnEntry {
		s.mode = stepInto // pause at the very first line
		s.stopOnEntry = true
	}
	s.cfgGlobals = cfg.Globals
	return s
}

// Interp exposes the session's interpreter so embedders can construct
// native objects (the devUDF _conn shim) bound to it before Start.
func (s *Session) Interp() *script.Interp { return s.in }

// SetGlobal injects a module-scope binding before Start (devUDF injects
// _conn this way). It panics if called after Start.
func (s *Session) SetGlobal(name string, v script.Value) {
	if s.started {
		panic("debug: SetGlobal after Start")
	}
	if s.cfgGlobals == nil {
		s.cfgGlobals = map[string]script.Value{}
	}
	s.cfgGlobals[name] = v
}

// SetBreakpoint sets (or replaces) a breakpoint.
func (s *Session) SetBreakpoint(line int, condition string) {
	s.breakpoints[line] = &Breakpoint{Line: line, Condition: condition}
}

// ClearBreakpoint removes a breakpoint.
func (s *Session) ClearBreakpoint(line int) { delete(s.breakpoints, line) }

// Breakpoints lists breakpoints sorted by line.
func (s *Session) Breakpoints() []Breakpoint {
	out := make([]Breakpoint, 0, len(s.breakpoints))
	for _, b := range s.breakpoints {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Source returns the debugged module's source lines (1-based indexing by
// line number: Source()[l-1]).
func (s *Session) Source() []string { return s.mod.Lines }

// Start launches the debuggee and returns the first stop event: the entry
// pause when StopOnEntry, otherwise the first breakpoint hit / completion.
func (s *Session) Start() Event {
	if s.started {
		return Event{Reason: ReasonDone, Terminal: true,
			Err: core.Errorf(core.KindConstraint, "session already started")}
	}
	s.started = true
	go func() {
		globals := s.in.NewGlobals()
		if s.cfgGlobals != nil {
			for k, v := range s.cfgGlobals {
				globals.Set(k, v)
			}
		}
		err := s.in.RunInEnv(s.mod, globals)
		s.finished = true
		s.result = globals
		s.lastErr = err
		reason := ReasonDone
		if s.killed.Load() {
			reason = ReasonKilled
			err = nil
		}
		s.events <- Event{Reason: reason, Terminal: true, Err: err}
		close(s.events)
	}()
	return <-s.events
}

// Continue resumes until the next breakpoint, pause request or completion.
func (s *Session) Continue() Event { return s.control(command{kind: cmdContinue}) }

// StepOver resumes until the next line at the same or a shallower depth.
func (s *Session) StepOver() Event { return s.control(command{kind: cmdStepOver}) }

// StepInto resumes until the next line anywhere (entering calls).
func (s *Session) StepInto() Event { return s.control(command{kind: cmdStepInto}) }

// StepOut resumes until control returns to the caller.
func (s *Session) StepOut() Event { return s.control(command{kind: cmdStepOut}) }

// Kill aborts the debuggee and returns the terminal event.
func (s *Session) Kill() Event {
	s.killed.Store(true)
	return s.control(command{kind: cmdKill})
}

// RequestPause asks a *running* debuggee to stop at its next line. It is
// the one asynchronous control; the pause materializes as a ReasonPause
// event from the in-flight Continue call.
func (s *Session) RequestPause() { s.pauseFlag.Store(true) }

func (s *Session) control(cmd command) Event {
	if s.finishedOrUnstarted() {
		return Event{Reason: ReasonDone, Terminal: true,
			Err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
	}
	s.cmds <- cmd
	ev, ok := <-s.events
	if !ok {
		return Event{Reason: ReasonDone, Terminal: true}
	}
	return ev
}

func (s *Session) finishedOrUnstarted() bool { return !s.started || s.finished }

// Eval evaluates a watch expression in the paused frame.
func (s *Session) Eval(expr string) (script.Value, error) {
	res := s.inspect(command{kind: cmdEval, expr: expr})
	return res.value, res.err
}

// Locals returns the paused frame's local variables.
func (s *Session) Locals() (map[string]script.Value, error) {
	res := s.inspect(command{kind: cmdLocals})
	return res.vars, res.err
}

// GlobalVars returns the module-level variables.
func (s *Session) GlobalVars() (map[string]script.Value, error) {
	res := s.inspect(command{kind: cmdGlobals})
	return res.vars, res.err
}

// Stack returns the call stack, innermost frame first.
func (s *Session) Stack() ([]FrameInfo, error) {
	res := s.inspect(command{kind: cmdStack})
	return res.frames, res.err
}

func (s *Session) inspect(cmd command) cmdResult {
	if s.finishedOrUnstarted() {
		return cmdResult{err: core.Errorf(core.KindConstraint, "debuggee is not paused")}
	}
	cmd.resp = make(chan cmdResult, 1)
	s.cmds <- cmd
	return <-cmd.resp
}

// Result returns the module globals and error after the terminal event.
func (s *Session) Result() (*script.Env, error) {
	if !s.finished {
		return nil, core.Errorf(core.KindConstraint, "debuggee has not finished")
	}
	return s.result, s.lastErr
}

// errKilled aborts the interpreter from inside the trace hook.
var errKilled = core.Errorf(core.KindRuntime, "killed by debugger")

// trace is the interpreter hook: it decides whether to pause at this event
// and, when paused, processes inspection/control commands until resumed.
func (s *Session) trace(in *script.Interp, ev script.TraceEvent) error {
	if s.killed.Load() {
		return errKilled
	}
	if ev.Kind != script.TraceLine {
		return nil
	}
	reason, stop := s.shouldStop(in, ev)
	if !stop {
		return nil
	}
	s.events <- Event{
		Reason:   reason,
		Line:     ev.Line,
		FuncName: ev.Frame.FuncName,
		Depth:    ev.Frame.Depth,
	}
	for cmd := range s.cmds {
		switch cmd.kind {
		case cmdContinue:
			s.mode = stepNone
			return nil
		case cmdStepOver:
			s.mode = stepOver
			s.modeDepth = ev.Frame.Depth
			return nil
		case cmdStepInto:
			s.mode = stepInto
			return nil
		case cmdStepOut:
			s.mode = stepOut
			s.modeDepth = ev.Frame.Depth
			return nil
		case cmdKill:
			s.killed.Store(true)
			return errKilled
		case cmdEval:
			v, err := in.EvalInFrame(cmd.expr, ev.Frame)
			cmd.resp <- cmdResult{value: v, err: err}
		case cmdLocals:
			cmd.resp <- cmdResult{vars: ev.Frame.Env.Snapshot()}
		case cmdGlobals:
			g := in.Globals
			if g == nil {
				cmd.resp <- cmdResult{vars: map[string]script.Value{}}
			} else {
				cmd.resp <- cmdResult{vars: g.Snapshot()}
			}
		case cmdStack:
			var frames []FrameInfo
			for f := ev.Frame; f != nil; f = f.Caller {
				frames = append(frames, FrameInfo{FuncName: f.FuncName, Line: f.Line, Depth: f.Depth})
			}
			cmd.resp <- cmdResult{frames: frames}
		}
	}
	return nil
}

// shouldStop applies pause requests, step modes and breakpoints, in that
// order of precedence.
func (s *Session) shouldStop(in *script.Interp, ev script.TraceEvent) (StopReason, bool) {
	if s.pauseFlag.Swap(false) {
		s.mode = stepNone
		return ReasonPause, true
	}
	switch s.mode {
	case stepInto:
		s.mode = stepNone
		if s.stopOnEntry && !s.sawEntry {
			s.sawEntry = true
			return ReasonEntry, true
		}
		return ReasonStep, true
	case stepOver:
		if ev.Frame.Depth <= s.modeDepth {
			s.mode = stepNone
			return ReasonStep, true
		}
	case stepOut:
		if ev.Frame.Depth < s.modeDepth {
			s.mode = stepNone
			return ReasonStep, true
		}
	}
	if bp, ok := s.breakpoints[ev.Line]; ok {
		if bp.Condition != "" {
			v, err := in.EvalInFrame(bp.Condition, ev.Frame)
			if err != nil || !script.Truthy(v) {
				return "", false
			}
		}
		bp.HitCount++
		return ReasonBreakpoint, true
	}
	return "", false
}
