package debug

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/script"
)

func parseMod(t *testing.T, src string) *script.Module {
	t.Helper()
	mod, err := script.Parse("debuggee", src)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

const countdownSrc = `total = 0
for i in range(0, 5):
    total = total + i
result = total * 2
`

func TestBreakpointAndLocals(t *testing.T) {
	s := NewSession(parseMod(t, countdownSrc), Config{})
	s.SetBreakpoint(3, "")
	ev := s.Start()
	if ev.Reason != ReasonBreakpoint || ev.Line != 3 {
		t.Fatalf("first stop: %+v", ev)
	}
	vars, err := s.Locals()
	if err != nil {
		t.Fatal(err)
	}
	if vars["i"].Repr() != "0" || vars["total"].Repr() != "0" {
		t.Fatalf("locals: i=%v total=%v", vars["i"], vars["total"])
	}
	ev = s.Continue()
	if ev.Reason != ReasonBreakpoint || ev.Line != 3 {
		t.Fatalf("second stop: %+v", ev)
	}
	vars, _ = s.Locals()
	if vars["i"].Repr() != "1" {
		t.Fatalf("i on second hit: %v", vars["i"])
	}
	// run to completion
	s.ClearBreakpoint(3)
	ev = s.Continue()
	if !ev.Terminal || ev.Reason != ReasonDone || ev.Err != nil {
		t.Fatalf("terminal: %+v", ev)
	}
	env, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := env.Get("result")
	if v.Repr() != "20" {
		t.Fatalf("result: %s", v.Repr())
	}
}

func TestConditionalBreakpoint(t *testing.T) {
	s := NewSession(parseMod(t, countdownSrc), Config{})
	s.SetBreakpoint(3, "i == 3")
	ev := s.Start()
	if ev.Reason != ReasonBreakpoint {
		t.Fatalf("stop: %+v", ev)
	}
	vars, _ := s.Locals()
	if vars["i"].Repr() != "3" {
		t.Fatalf("condition should skip until i==3, got %v", vars["i"])
	}
	ev = s.Continue()
	if !ev.Terminal {
		t.Fatalf("should finish: %+v", ev)
	}
}

func TestStopOnEntryAndStepping(t *testing.T) {
	src := `def helper(x):
    y = x + 1
    return y

a = helper(1)
b = helper(a)
c = a + b
`
	s := NewSession(parseMod(t, src), Config{StopOnEntry: true})
	ev := s.Start()
	if ev.Reason != ReasonEntry || ev.Line != 1 {
		t.Fatalf("entry: %+v", ev)
	}
	// step over the def
	ev = s.StepOver()
	if ev.Line != 5 {
		t.Fatalf("after def: %+v", ev)
	}
	// step into helper
	ev = s.StepInto()
	if ev.Line != 2 || ev.FuncName != "helper" {
		t.Fatalf("into helper: %+v", ev)
	}
	stack, err := s.Stack()
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) != 2 || stack[0].FuncName != "helper" || stack[1].FuncName != "<module>" {
		t.Fatalf("stack: %+v", stack)
	}
	// step out back to module level
	ev = s.StepOut()
	if ev.FuncName != "<module>" {
		t.Fatalf("out: %+v", ev)
	}
	// step over the second call without entering it
	ev = s.StepOver()
	if ev.FuncName != "<module>" || ev.Line != 7 {
		t.Fatalf("over: %+v", ev)
	}
	ev = s.Continue()
	if !ev.Terminal {
		t.Fatalf("terminal: %+v", ev)
	}
	env, _ := s.Result()
	v, _ := env.Get("c")
	if v.Repr() != "5" {
		t.Fatalf("c = %s", v.Repr())
	}
}

func TestWatchExpressions(t *testing.T) {
	s := NewSession(parseMod(t, countdownSrc), Config{})
	s.SetBreakpoint(4, "")
	ev := s.Start()
	if ev.Line != 4 {
		t.Fatalf("stop: %+v", ev)
	}
	v, err := s.Eval("total * 10")
	if err != nil {
		t.Fatal(err)
	}
	if v.Repr() != "100" {
		t.Fatalf("watch: %s", v.Repr())
	}
	if _, err := s.Eval("undefined_name"); err == nil {
		t.Fatal("watch of undefined name should error")
	}
	if _, err := s.Eval("x = 1"); err == nil {
		t.Fatal("watch must reject statements")
	}
	s.Kill()
}

func TestKill(t *testing.T) {
	s := NewSession(parseMod(t, "i = 0\nwhile True:\n    i = i + 1\n"), Config{})
	s.SetBreakpoint(3, "")
	ev := s.Start()
	if ev.Reason != ReasonBreakpoint {
		t.Fatalf("stop: %+v", ev)
	}
	ev = s.Kill()
	if ev.Reason != ReasonKilled || !ev.Terminal {
		t.Fatalf("kill: %+v", ev)
	}
	// further control is rejected cleanly
	ev = s.Continue()
	if ev.Err == nil {
		t.Fatal("control after kill should error")
	}
}

func TestExceptionReporting(t *testing.T) {
	s := NewSession(parseMod(t, "x = 1\ny = x / 0\n"), Config{})
	ev := s.Start()
	if ev.Reason != ReasonDone || ev.Err == nil {
		t.Fatalf("terminal: %+v", ev)
	}
	if !strings.Contains(ev.Err.Error(), "division by zero") {
		t.Fatalf("err: %v", ev.Err)
	}
}

func TestGlobalsInjection(t *testing.T) {
	s := NewSession(parseMod(t, "doubled = seed * 2\n"), Config{
		Globals: map[string]script.Value{"seed": script.IntVal(21)},
	})
	ev := s.Start()
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	env, _ := s.Result()
	v, _ := env.Get("doubled")
	if v.Repr() != "42" {
		t.Fatalf("doubled: %s", v.Repr())
	}
}

// TestScenarioADebugging walks the paper's Scenario A: the developer sets a
// breakpoint inside the buggy mean_deviation loop and watches `distance`
// go negative — impossible for a sum of absolute differences — exposing
// the missing abs().
func TestScenarioADebugging(t *testing.T) {
	src := `def mean_deviation(column):
    mean = 0
    for i in range(0, len(column)):
        mean += column[i]
    mean = mean / len(column)
    distance = 0
    for i in range(0, len(column)):
        distance += column[i] - mean
    deviation = distance / len(column)
    return deviation

result = mean_deviation([1, 2, 3, 4, 100])
`
	s := NewSession(parseMod(t, src), Config{})
	// watch the accumulator each time around the second loop
	s.SetBreakpoint(8, "")
	ev := s.Start()
	sawNegative := false
	for ev.Reason == ReasonBreakpoint {
		v, err := s.Eval("distance")
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(v.Repr(), "-") {
			sawNegative = true
		}
		ev = s.Continue()
	}
	if !ev.Terminal {
		t.Fatalf("expected completion, got %+v", ev)
	}
	if !sawNegative {
		t.Fatal("the debugger should reveal a negative distance accumulator (the Scenario A bug)")
	}
}

func TestRemoteDebugging(t *testing.T) {
	s := NewSession(parseMod(t, countdownSrc), Config{})
	srv := NewRemoteServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- srv.ServeConn(conn)
	}()

	rc, err := DialRemote(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if err := rc.SetBreakpoint(3, "i == 2"); err != nil {
		t.Fatal(err)
	}
	ev, err := rc.Start()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Reason != ReasonBreakpoint || ev.Line != 3 {
		t.Fatalf("remote stop: %+v", ev)
	}
	vars, err := rc.Locals()
	if err != nil {
		t.Fatal(err)
	}
	if vars["i"] != "2" {
		t.Fatalf("remote locals: %v", vars)
	}
	val, err := rc.Eval("total + 100")
	if err != nil {
		t.Fatal(err)
	}
	if val != "101" { // 0+1 accumulated before i==2
		t.Fatalf("remote eval: %s", val)
	}
	stack, err := rc.Stack()
	if err != nil || len(stack) != 1 {
		t.Fatalf("remote stack: %v %v", stack, err)
	}
	src, err := rc.Source()
	if err != nil || len(src) < 4 {
		t.Fatalf("remote source: %d lines, %v", len(src), err)
	}
	ev, err = rc.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Terminal {
		t.Fatalf("remote terminal: %+v", ev)
	}
	rc.Close()
	<-done
}

func TestRemoteUnknownCommand(t *testing.T) {
	s := NewSession(parseMod(t, "x = 1\n"), Config{})
	srv := NewRemoteServer(s)
	resp := srv.handle(Request{Seq: 9, Command: "fly"})
	if resp.Success || !strings.Contains(resp.Error, "unknown command") {
		t.Fatalf("resp: %+v", resp)
	}
}

func TestRequestPause(t *testing.T) {
	// A long-running loop with no breakpoints: RequestPause is the only
	// way to stop it (PyCharm's "Pause Program").
	src := "i = 0\nwhile i < 100000000:\n    i = i + 1\n"
	s := NewSession(parseMod(t, src), Config{})
	done := make(chan Event, 1)
	go func() { done <- s.Start() }()
	// let it run a little, then pause
	time.Sleep(20 * time.Millisecond)
	s.RequestPause()
	select {
	case ev := <-done:
		if ev.Reason != ReasonPause {
			t.Fatalf("expected pause, got %+v", ev)
		}
		v, err := s.Eval("i")
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := v.(script.IntVal); !ok || n <= 0 {
			t.Fatalf("i should have advanced: %v", v)
		}
		kill := s.Kill()
		if kill.Reason != ReasonKilled {
			t.Fatalf("kill: %+v", kill)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pause never landed")
	}
}

func TestBreakpointHitCounts(t *testing.T) {
	s := NewSession(parseMod(t, countdownSrc), Config{})
	s.SetBreakpoint(3, "")
	ev := s.Start()
	hits := 1
	for {
		ev = s.Continue()
		if ev.Terminal {
			break
		}
		hits++
	}
	if hits != 5 {
		t.Fatalf("hits: %d", hits)
	}
	bps := s.Breakpoints()
	if len(bps) != 1 || bps[0].HitCount != 5 {
		t.Fatalf("breakpoint meta: %+v", bps)
	}
}
