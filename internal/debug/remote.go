package debug

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"repro/internal/core"
	"repro/internal/script"
)

// Remote debugging: a JSON line protocol (in the spirit of the Debug
// Adapter Protocol) between the IDE side (RemoteClient) and the process
// running the UDF (RemoteServer wrapping a Session). This reproduces the
// architecture split PyCharm uses with pydevd: the debugger UI and the
// debuggee live in different processes connected by a socket.

// Request is one debugger command on the wire.
type Request struct {
	Seq       int    `json:"seq"`
	Command   string `json:"command"`
	Line      int    `json:"line,omitempty"`
	Condition string `json:"condition,omitempty"`
	Expr      string `json:"expr,omitempty"`
}

// Response answers one Request.
type Response struct {
	Seq     int               `json:"seq"`
	Success bool              `json:"success"`
	Error   string            `json:"error,omitempty"`
	Event   *WireEvent        `json:"event,omitempty"`
	Vars    map[string]string `json:"vars,omitempty"`
	Value   string            `json:"value,omitempty"`
	Frames  []FrameInfo       `json:"frames,omitempty"`
	Source  []string          `json:"source,omitempty"`
}

// WireEvent is the JSON form of Event.
type WireEvent struct {
	Reason   string `json:"reason"`
	Line     int    `json:"line"`
	FuncName string `json:"funcName,omitempty"`
	Depth    int    `json:"depth"`
	Terminal bool   `json:"terminal"`
	Err      string `json:"err,omitempty"`
}

func toWireEvent(ev Event) *WireEvent {
	w := &WireEvent{
		Reason: string(ev.Reason), Line: ev.Line,
		FuncName: ev.FuncName, Depth: ev.Depth, Terminal: ev.Terminal,
	}
	if ev.Err != nil {
		w.Err = ev.Err.Error()
	}
	return w
}

func fromWireEvent(w *WireEvent) Event {
	ev := Event{
		Reason: StopReason(w.Reason), Line: w.Line,
		FuncName: w.FuncName, Depth: w.Depth, Terminal: w.Terminal,
	}
	if w.Err != "" {
		ev.Err = core.Errorf(core.KindRuntime, "%s", w.Err)
	}
	return ev
}

// RemoteServer serves one debug session to one client connection.
type RemoteServer struct {
	sess *Session
}

// NewRemoteServer wraps a session for remote control.
func NewRemoteServer(sess *Session) *RemoteServer { return &RemoteServer{sess: sess} }

// ServeConn processes requests until the connection closes or the session
// reaches a terminal event and the client disconnects.
func (rs *RemoteServer) ServeConn(conn net.Conn) error {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			_ = enc.Encode(Response{Success: false, Error: "bad request: " + err.Error()})
			continue
		}
		resp := rs.handle(req)
		if err := enc.Encode(resp); err != nil {
			return core.Wrapf(core.KindIO, err, "write response: %v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return core.Wrapf(core.KindIO, err, "read request: %v", err)
	}
	return nil
}

func (rs *RemoteServer) handle(req Request) Response {
	resp := Response{Seq: req.Seq, Success: true}
	evResp := func(ev Event) {
		resp.Event = toWireEvent(ev)
	}
	switch req.Command {
	case "setBreakpoint":
		rs.sess.SetBreakpoint(req.Line, req.Condition)
	case "clearBreakpoint":
		rs.sess.ClearBreakpoint(req.Line)
	case "start":
		evResp(rs.sess.Start())
	case "continue":
		evResp(rs.sess.Continue())
	case "stepOver":
		evResp(rs.sess.StepOver())
	case "stepInto":
		evResp(rs.sess.StepInto())
	case "stepOut":
		evResp(rs.sess.StepOut())
	case "kill":
		evResp(rs.sess.Kill())
	case "pause":
		rs.sess.RequestPause()
	case "eval":
		v, err := rs.sess.Eval(req.Expr)
		if err != nil {
			return Response{Seq: req.Seq, Success: false, Error: err.Error()}
		}
		resp.Value = v.Repr()
	case "locals", "globals":
		var vars map[string]script.Value
		var err error
		if req.Command == "locals" {
			vars, err = rs.sess.Locals()
		} else {
			vars, err = rs.sess.GlobalVars()
		}
		if err != nil {
			return Response{Seq: req.Seq, Success: false, Error: err.Error()}
		}
		resp.Vars = reprVars(vars)
	case "stack":
		frames, err := rs.sess.Stack()
		if err != nil {
			return Response{Seq: req.Seq, Success: false, Error: err.Error()}
		}
		resp.Frames = frames
	case "source":
		resp.Source = rs.sess.Source()
	default:
		return Response{Seq: req.Seq, Success: false,
			Error: fmt.Sprintf("unknown command %q", req.Command)}
	}
	return resp
}

func reprVars(vars map[string]script.Value) map[string]string {
	out := make(map[string]string, len(vars))
	for k, v := range vars {
		out[k] = v.Repr()
	}
	return out
}

// SortedVarNames is a display helper shared by the CLI and tests.
func SortedVarNames(vars map[string]string) []string {
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RemoteClient drives a RemoteServer over a socket with the same API shape
// as Session.
type RemoteClient struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
	seq  int
}

// DialRemote connects to a remote debug server.
func DialRemote(addr string) (*RemoteClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, core.Wrapf(core.KindIO, err, "connect debugger %s: %v", addr, err)
	}
	return NewRemoteClient(conn), nil
}

// NewRemoteClient wraps an existing connection.
func NewRemoteClient(conn net.Conn) *RemoteClient {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &RemoteClient{conn: conn, sc: sc, enc: json.NewEncoder(conn)}
}

// Close closes the control connection.
func (rc *RemoteClient) Close() error { return rc.conn.Close() }

func (rc *RemoteClient) roundTrip(req Request) (Response, error) {
	rc.seq++
	req.Seq = rc.seq
	if err := rc.enc.Encode(req); err != nil {
		return Response{}, core.Wrapf(core.KindIO, err, "send: %v", err)
	}
	if !rc.sc.Scan() {
		if err := rc.sc.Err(); err != nil {
			return Response{}, core.Wrapf(core.KindIO, err, "recv: %v", err)
		}
		return Response{}, core.Errorf(core.KindIO, "debug server closed the connection")
	}
	var resp Response
	if err := json.Unmarshal(rc.sc.Bytes(), &resp); err != nil {
		return Response{}, core.Wrapf(core.KindProtocol, err, "bad response: %v", err)
	}
	if !resp.Success {
		return resp, core.Errorf(core.KindRuntime, "%s", resp.Error)
	}
	return resp, nil
}

func (rc *RemoteClient) eventCmd(cmd string) (Event, error) {
	resp, err := rc.roundTrip(Request{Command: cmd})
	if err != nil {
		return Event{}, err
	}
	if resp.Event == nil {
		return Event{}, core.Errorf(core.KindProtocol, "missing event in %s response", cmd)
	}
	return fromWireEvent(resp.Event), nil
}

// SetBreakpoint mirrors Session.SetBreakpoint.
func (rc *RemoteClient) SetBreakpoint(line int, condition string) error {
	_, err := rc.roundTrip(Request{Command: "setBreakpoint", Line: line, Condition: condition})
	return err
}

// ClearBreakpoint mirrors Session.ClearBreakpoint.
func (rc *RemoteClient) ClearBreakpoint(line int) error {
	_, err := rc.roundTrip(Request{Command: "clearBreakpoint", Line: line})
	return err
}

// Start mirrors Session.Start.
func (rc *RemoteClient) Start() (Event, error) { return rc.eventCmd("start") }

// Continue mirrors Session.Continue.
func (rc *RemoteClient) Continue() (Event, error) { return rc.eventCmd("continue") }

// StepOver mirrors Session.StepOver.
func (rc *RemoteClient) StepOver() (Event, error) { return rc.eventCmd("stepOver") }

// StepInto mirrors Session.StepInto.
func (rc *RemoteClient) StepInto() (Event, error) { return rc.eventCmd("stepInto") }

// StepOut mirrors Session.StepOut.
func (rc *RemoteClient) StepOut() (Event, error) { return rc.eventCmd("stepOut") }

// Kill mirrors Session.Kill.
func (rc *RemoteClient) Kill() (Event, error) { return rc.eventCmd("kill") }

// Eval mirrors Session.Eval; values come back as their repr.
func (rc *RemoteClient) Eval(expr string) (string, error) {
	resp, err := rc.roundTrip(Request{Command: "eval", Expr: expr})
	if err != nil {
		return "", err
	}
	return resp.Value, nil
}

// Locals mirrors Session.Locals with repr values.
func (rc *RemoteClient) Locals() (map[string]string, error) {
	resp, err := rc.roundTrip(Request{Command: "locals"})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// GlobalVars mirrors Session.GlobalVars with repr values.
func (rc *RemoteClient) GlobalVars() (map[string]string, error) {
	resp, err := rc.roundTrip(Request{Command: "globals"})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// Stack mirrors Session.Stack.
func (rc *RemoteClient) Stack() ([]FrameInfo, error) {
	resp, err := rc.roundTrip(Request{Command: "stack"})
	if err != nil {
		return nil, err
	}
	return resp.Frames, nil
}

// Source fetches the debugged module's source lines.
func (rc *RemoteClient) Source() ([]string, error) {
	resp, err := rc.roundTrip(Request{Command: "source"})
	if err != nil {
		return nil, err
	}
	return resp.Source, nil
}
