package debug

import (
	"sync"
	"testing"

	"repro/internal/script"
)

// stressMod is a long-running loop with a call so stepping exercises both
// depth changes and plain lines.
const stressSrc = `def work(x):
    y = x * 2
    return y

total = 0
for i in range(0, 100000):
    total += work(i)
`

// TestStressConcurrentControl hammers SetBreakpoint / ClearBreakpoint /
// RequestPause / Kill from other goroutines while the controlling goroutine
// steps — run under -race, it proves the session's shared state (breakpoint
// map, terminal state, kill/pause flags) is properly synchronized and that
// no interleaving deadlocks.
func TestStressConcurrentControl(t *testing.T) {
	for round := 0; round < 8; round++ {
		mod, err := script.Parse("stress.py", stressSrc)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(mod, Config{StopOnEntry: true})

		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Breakpoint mutator: churns the map the trace hook reads.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				line := 2 + i%6
				s.SetBreakpoint(line, "")
				_ = s.Breakpoints()
				s.ClearBreakpoint(line)
			}
		}()
		// Pause requester.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.RequestPause()
				}
			}
		}()
		// Late killer: fires while stepping is in full swing.
		killed := make(chan Event, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-stop
			killed <- s.Kill()
		}()

		// The controlling goroutine steps through the debuggee.
		ev := s.Start()
		for i := 0; i < 200 && !ev.Terminal; i++ {
			switch i % 4 {
			case 0:
				ev = s.StepInto()
			case 1:
				ev = s.StepOver()
			case 2:
				ev = s.Continue()
			default:
				ev = s.StepOut()
			}
			if !ev.Terminal && i%10 == 0 {
				// Inspections must be safe while paused.
				_, _ = s.Locals()
				_, _ = s.Stack()
				_, _ = s.Eval("i")
			}
		}
		close(stop)
		kev := <-killed
		if !kev.Terminal {
			t.Fatalf("round %d: Kill returned a non-terminal event: %+v", round, kev)
		}
		// After the terminal event every control and inspection call must
		// return immediately with the terminal state or an error — never hang.
		if ev := s.Continue(); !ev.Terminal {
			t.Fatalf("round %d: Continue after finish is not terminal", round)
		}
		if _, err := s.Locals(); err == nil {
			t.Fatalf("round %d: Locals after finish should fail", round)
		}
		wg.Wait()
	}
}

// TestKillWhilePausedRace kills from a second goroutine while the controller
// is blocked in a control call, repeatedly — the interleaving that loses
// events when terminal-state delivery is a plain channel close.
func TestKillWhilePausedRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		mod, err := script.Parse("loop.py", "total = 0\nfor i in range(0, 1000000):\n    total += i\n")
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(mod, Config{StopOnEntry: true})
		ev := s.Start()
		if ev.Terminal {
			t.Fatal("expected entry pause")
		}
		done := make(chan Event, 1)
		go func() { done <- s.Kill() }()
		// Race the kill against a resume.
		ev = s.Continue()
		kev := <-done
		if !kev.Terminal {
			t.Fatalf("round %d: kill event not terminal: %+v", round, kev)
		}
		if !ev.Terminal {
			// The continue lost the race and observed a pause; the next
			// control call must still terminate.
			ev = s.Continue()
			if !ev.Terminal {
				t.Fatalf("round %d: continue after kill not terminal: %+v", round, ev)
			}
		}
	}
}
