package vcs

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func newRepo(t *testing.T) *Repo {
	t.Helper()
	fs := core.NewMemFS(nil)
	r, err := Init(fs, "project")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInitAndReopen(t *testing.T) {
	fs := core.NewMemFS(nil)
	if _, err := Open(fs, "p"); err == nil {
		t.Fatal("open before init should fail")
	}
	if _, err := Init(fs, "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := Init(fs, "p"); err == nil {
		t.Fatal("double init should fail")
	}
	if _, err := Open(fs, "p"); err != nil {
		t.Fatal(err)
	}
}

func TestCommitLogCheckout(t *testing.T) {
	r := newRepo(t)
	h1, err := r.Commit("mark", "initial import", map[string][]byte{
		"mean_deviation.py": []byte("def mean_deviation(column):\n    return 0\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Commit("mark", "fix abs bug", map[string][]byte{
		"mean_deviation.py": []byte("def mean_deviation(column):\n    return abs(0)\n"),
		"loader.py":         []byte("def loadNumbers(path):\n    pass\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct commits must have distinct hashes")
	}
	log, err := r.Log()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[0].Hash != h2 || log[1].Hash != h1 {
		t.Fatalf("log: %+v", log)
	}
	if log[0].Message != "fix abs bug" || log[0].Seq != 2 || log[0].Parent != h1 {
		t.Fatalf("commit meta: %+v", log[0])
	}
	files, err := r.Checkout(h1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || !strings.Contains(string(files["mean_deviation.py"]), "return 0") {
		t.Fatalf("checkout h1: %v", files)
	}
	files, err = r.Checkout("") // HEAD
	if err != nil || len(files) != 2 {
		t.Fatalf("checkout HEAD: %v %v", files, err)
	}
}

func TestEmptyCommitRejected(t *testing.T) {
	r := newRepo(t)
	if _, err := r.Commit("m", "nothing", nil); err == nil {
		t.Fatal("empty commit should fail")
	}
	files := map[string][]byte{"a.py": []byte("x = 1\n")}
	if _, err := r.Commit("m", "first", files); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit("m", "same", files); err == nil {
		t.Fatal("no-change commit should fail")
	}
}

func TestDiff(t *testing.T) {
	r := newRepo(t)
	h1, _ := r.Commit("m", "v1", map[string][]byte{
		"f.py":   []byte("a\nb\nc\n"),
		"old.py": []byte("gone\n"),
	})
	h2, _ := r.Commit("m", "v2", map[string][]byte{
		"f.py":   []byte("a\nB\nc\nd\n"),
		"new.py": []byte("hello\n"),
	})
	diff, err := r.Diff(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]DiffEntry{}
	for _, d := range diff {
		byPath[d.Path] = d
	}
	if byPath["old.py"].Status != DiffRemoved || byPath["new.py"].Status != DiffAdded {
		t.Fatalf("statuses: %+v", byPath)
	}
	mod := byPath["f.py"]
	if mod.Status != DiffModified {
		t.Fatalf("f.py: %+v", mod)
	}
	joined := strings.Join(mod.Lines, "|")
	if !strings.Contains(joined, "-b") || !strings.Contains(joined, "+B") || !strings.Contains(joined, "+d") {
		t.Fatalf("diff lines: %v", mod.Lines)
	}
}

func TestStatusAgainstHead(t *testing.T) {
	r := newRepo(t)
	_, _ = r.Commit("m", "v1", map[string][]byte{
		"keep.py":   []byte("k\n"),
		"change.py": []byte("old\n"),
		"del.py":    []byte("d\n"),
	})
	status, err := r.StatusAgainstHead(map[string][]byte{
		"keep.py":   []byte("k\n"),
		"change.py": []byte("new\n"),
		"added.py":  []byte("a\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]DiffStatus{}
	for _, s := range status {
		got[s.Path] = s.Status
	}
	if got["change.py"] != DiffModified || got["del.py"] != DiffRemoved || got["added.py"] != DiffAdded {
		t.Fatalf("status: %v", got)
	}
	if _, ok := got["keep.py"]; ok {
		t.Fatal("unchanged file should not appear")
	}
}

func TestFileAt(t *testing.T) {
	r := newRepo(t)
	h, _ := r.Commit("m", "v1", map[string][]byte{"a.py": []byte("v1\n")})
	_, _ = r.Commit("m", "v2", map[string][]byte{"a.py": []byte("v2\n")})
	b, err := r.FileAt(h, "a.py")
	if err != nil || string(b) != "v1\n" {
		t.Fatalf("FileAt: %q %v", b, err)
	}
	if _, err := r.FileAt(h, "missing.py"); err == nil {
		t.Fatal("missing file should error")
	}
	if _, err := r.FileAt("deadbeef", "a.py"); err == nil {
		t.Fatal("missing commit should error")
	}
}

func TestDiffLinesProperty(t *testing.T) {
	// Applying the diff to A must reproduce B.
	f := func(aRaw, bRaw []uint8) bool {
		a := makeLines(aRaw)
		b := makeLines(bRaw)
		diff := DiffLines(a, b)
		var rebuilt []string
		for _, d := range diff {
			if strings.HasPrefix(d, "+") || strings.HasPrefix(d, " ") {
				rebuilt = append(rebuilt, d[1:])
			}
		}
		want := splitLines(b)
		if len(rebuilt) != len(want) {
			return false
		}
		for i := range want {
			if rebuilt[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// makeLines converts arbitrary bytes to a small line-based document.
func makeLines(raw []uint8) string {
	var sb strings.Builder
	for _, r := range raw {
		sb.WriteString("line")
		sb.WriteByte('0' + r%7)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestHistoryOfUDFWorkflow(t *testing.T) {
	// The workflow the paper motivates: import → commit → edit → commit →
	// inspect history of a UDF file.
	r := newRepo(t)
	buggy := "def mean_deviation(column):\n    distance += column[i] - mean\n"
	fixed := "def mean_deviation(column):\n    distance += abs(column[i] - mean)\n"
	h1, err := r.Commit("dev", "import from server", map[string][]byte{"mean_deviation.py": []byte(buggy)})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Commit("dev", "fix: use absolute difference", map[string][]byte{"mean_deviation.py": []byte(fixed)})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := r.Diff(h1, h2)
	if err != nil || len(diff) != 1 {
		t.Fatalf("diff: %v %v", diff, err)
	}
	joined := strings.Join(diff[0].Lines, "\n")
	if !strings.Contains(joined, "-    distance += column[i] - mean") ||
		!strings.Contains(joined, "+    distance += abs(column[i] - mean)") {
		t.Fatalf("diff should show the abs fix:\n%s", joined)
	}
}
