// Package vcs is a minimal content-addressed version control system for
// devUDF project files. The paper (§1) argues that because UDFs live inside
// the database server, "version control systems such as Git cannot be
// easily integrated"; devUDF fixes this by materializing UDFs as files.
// This package makes that claim testable offline: snapshot commits, log,
// checkout, status and line diffs over the UDF workspace, stored through
// the same core.FS abstraction the rest of the system uses.
package vcs

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

const vcsDir = ".udfvcs"

// Repo is a VCS repository rooted at a directory of an FS.
type Repo struct {
	fs   core.FS
	root string
}

// CommitInfo describes one commit, newest first in Log output.
type CommitInfo struct {
	Hash    string
	Parent  string
	Author  string
	Message string
	Seq     int
	Unix    int64
	Files   []string
}

// DiffStatus classifies a path in a diff.
type DiffStatus string

// Diff statuses.
const (
	DiffAdded    DiffStatus = "added"
	DiffRemoved  DiffStatus = "removed"
	DiffModified DiffStatus = "modified"
)

// DiffEntry is one changed path with a unified-style line diff for
// modifications.
type DiffEntry struct {
	Path   string
	Status DiffStatus
	Lines  []string // "+line" / "-line" / " line"
}

func (r *Repo) path(parts ...string) string {
	segs := append([]string{r.root, vcsDir}, parts...)
	joined := ""
	for _, s := range segs {
		if s == "" {
			continue
		}
		if joined != "" {
			joined += "/"
		}
		joined += s
	}
	return joined
}

// Init creates a repository rooted at root.
func Init(fs core.FS, root string) (*Repo, error) {
	r := &Repo{fs: fs, root: root}
	if _, err := fs.ReadFile(r.path("HEAD")); err == nil {
		return nil, core.Errorf(core.KindConstraint, "repository already initialized at %s", root)
	}
	if err := fs.WriteFile(r.path("HEAD"), []byte("")); err != nil {
		return nil, err
	}
	return r, nil
}

// Open opens an existing repository.
func Open(fs core.FS, root string) (*Repo, error) {
	r := &Repo{fs: fs, root: root}
	if _, err := fs.ReadFile(r.path("HEAD")); err != nil {
		return nil, core.Errorf(core.KindName, "no repository at %s (run init first)", root)
	}
	return r, nil
}

// Head returns the current commit hash ("" for an empty repository).
func (r *Repo) Head() (string, error) {
	b, err := r.fs.ReadFile(r.path("HEAD"))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// Commit snapshots the given files as a new commit and advances HEAD.
func (r *Repo) Commit(author, message string, files map[string][]byte) (string, error) {
	if len(files) == 0 {
		return "", core.Errorf(core.KindConstraint, "nothing to commit")
	}
	parent, err := r.Head()
	if err != nil {
		return "", err
	}
	seq := 1
	if parent != "" {
		pc, err := r.readCommit(parent)
		if err != nil {
			return "", err
		}
		seq = pc.Seq + 1
		// refuse empty commits
		same := len(pc.Files) == len(files)
		if same {
			for _, p := range pc.Files {
				blob, err := r.FileAt(parent, p)
				if err != nil {
					same = false
					break
				}
				cur, ok := files[p]
				if !ok || string(cur) != string(blob) {
					same = false
					break
				}
			}
		}
		if same {
			return "", core.Errorf(core.KindConstraint, "no changes since HEAD")
		}
	}
	// store blobs and build the tree manifest
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var tree strings.Builder
	for _, p := range paths {
		h := hashBytes(files[p])
		if err := r.fs.WriteFile(r.path("objects", h), files[p]); err != nil {
			return "", err
		}
		tree.WriteString(h)
		tree.WriteByte(' ')
		tree.WriteString(p)
		tree.WriteByte('\n')
	}
	var commit strings.Builder
	commit.WriteString("parent " + parent + "\n")
	commit.WriteString("author " + author + "\n")
	commit.WriteString("seq " + strconv.Itoa(seq) + "\n")
	commit.WriteString("unix " + strconv.FormatInt(time.Now().Unix(), 10) + "\n")
	commit.WriteString("message " + strings.ReplaceAll(message, "\n", " ") + "\n")
	commit.WriteString("tree\n")
	commit.WriteString(tree.String())
	data := []byte(commit.String())
	h := hashBytes(data)
	if err := r.fs.WriteFile(r.path("commits", h), data); err != nil {
		return "", err
	}
	if err := r.fs.WriteFile(r.path("HEAD"), []byte(h)); err != nil {
		return "", err
	}
	return h, nil
}

func (r *Repo) readCommit(hash string) (*CommitInfo, error) {
	data, err := r.fs.ReadFile(r.path("commits", hash))
	if err != nil {
		return nil, core.Errorf(core.KindName, "no such commit: %s", hash)
	}
	ci := &CommitInfo{Hash: hash}
	lines := strings.Split(string(data), "\n")
	inTree := false
	for _, ln := range lines {
		if ln == "" {
			continue
		}
		if inTree {
			parts := strings.SplitN(ln, " ", 2)
			if len(parts) == 2 {
				ci.Files = append(ci.Files, parts[1])
			}
			continue
		}
		switch {
		case strings.HasPrefix(ln, "parent "):
			ci.Parent = strings.TrimPrefix(ln, "parent ")
		case strings.HasPrefix(ln, "author "):
			ci.Author = strings.TrimPrefix(ln, "author ")
		case strings.HasPrefix(ln, "seq "):
			ci.Seq, _ = strconv.Atoi(strings.TrimPrefix(ln, "seq "))
		case strings.HasPrefix(ln, "unix "):
			ci.Unix, _ = strconv.ParseInt(strings.TrimPrefix(ln, "unix "), 10, 64)
		case strings.HasPrefix(ln, "message "):
			ci.Message = strings.TrimPrefix(ln, "message ")
		case ln == "tree":
			inTree = true
		}
	}
	return ci, nil
}

// treeOf returns path → blob hash at a commit.
func (r *Repo) treeOf(hash string) (map[string]string, error) {
	data, err := r.fs.ReadFile(r.path("commits", hash))
	if err != nil {
		return nil, core.Errorf(core.KindName, "no such commit: %s", hash)
	}
	tree := map[string]string{}
	inTree := false
	for _, ln := range strings.Split(string(data), "\n") {
		if ln == "tree" {
			inTree = true
			continue
		}
		if !inTree || ln == "" {
			continue
		}
		parts := strings.SplitN(ln, " ", 2)
		if len(parts) == 2 {
			tree[parts[1]] = parts[0]
		}
	}
	return tree, nil
}

// Log lists commits from HEAD back to the root, newest first.
func (r *Repo) Log() ([]CommitInfo, error) {
	head, err := r.Head()
	if err != nil {
		return nil, err
	}
	var out []CommitInfo
	for h := head; h != ""; {
		ci, err := r.readCommit(h)
		if err != nil {
			return nil, err
		}
		out = append(out, *ci)
		h = ci.Parent
	}
	return out, nil
}

// Checkout returns the full file snapshot of a commit ("" means HEAD).
func (r *Repo) Checkout(hash string) (map[string][]byte, error) {
	if hash == "" {
		head, err := r.Head()
		if err != nil {
			return nil, err
		}
		if head == "" {
			return nil, core.Errorf(core.KindConstraint, "repository has no commits")
		}
		hash = head
	}
	tree, err := r.treeOf(hash)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(tree))
	for p, bh := range tree {
		blob, err := r.fs.ReadFile(r.path("objects", bh))
		if err != nil {
			return nil, core.Errorf(core.KindIO, "missing blob %s for %s", bh, p)
		}
		out[p] = blob
	}
	return out, nil
}

// FileAt returns one file's contents at a commit.
func (r *Repo) FileAt(hash, path string) ([]byte, error) {
	tree, err := r.treeOf(hash)
	if err != nil {
		return nil, err
	}
	bh, ok := tree[path]
	if !ok {
		return nil, core.Errorf(core.KindName, "%s is not in commit %s", path, hash)
	}
	return r.fs.ReadFile(r.path("objects", bh))
}

// Diff compares two commits (either may be "" for HEAD).
func (r *Repo) Diff(a, b string) ([]DiffEntry, error) {
	resolve := func(h string) (map[string]string, error) {
		if h == "" {
			head, err := r.Head()
			if err != nil {
				return nil, err
			}
			h = head
		}
		if h == "" {
			return map[string]string{}, nil
		}
		return r.treeOf(h)
	}
	ta, err := resolve(a)
	if err != nil {
		return nil, err
	}
	tb, err := resolve(b)
	if err != nil {
		return nil, err
	}
	paths := map[string]bool{}
	for p := range ta {
		paths[p] = true
	}
	for p := range tb {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	var out []DiffEntry
	for _, p := range sorted {
		ha, inA := ta[p]
		hb, inB := tb[p]
		switch {
		case inA && !inB:
			out = append(out, DiffEntry{Path: p, Status: DiffRemoved})
		case !inA && inB:
			out = append(out, DiffEntry{Path: p, Status: DiffAdded})
		case ha != hb:
			blobA, err := r.fs.ReadFile(r.path("objects", ha))
			if err != nil {
				return nil, err
			}
			blobB, err := r.fs.ReadFile(r.path("objects", hb))
			if err != nil {
				return nil, err
			}
			out = append(out, DiffEntry{
				Path: p, Status: DiffModified,
				Lines: DiffLines(string(blobA), string(blobB)),
			})
		}
	}
	return out, nil
}

// StatusAgainstHead compares working files with HEAD, returning changed
// paths with statuses (added/removed/modified).
func (r *Repo) StatusAgainstHead(files map[string][]byte) ([]DiffEntry, error) {
	head, err := r.Head()
	if err != nil {
		return nil, err
	}
	var tree map[string]string
	if head == "" {
		tree = map[string]string{}
	} else {
		tree, err = r.treeOf(head)
		if err != nil {
			return nil, err
		}
	}
	paths := map[string]bool{}
	for p := range tree {
		paths[p] = true
	}
	for p := range files {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	var out []DiffEntry
	for _, p := range sorted {
		bh, inHead := tree[p]
		cur, inWork := files[p]
		switch {
		case inHead && !inWork:
			out = append(out, DiffEntry{Path: p, Status: DiffRemoved})
		case !inHead && inWork:
			out = append(out, DiffEntry{Path: p, Status: DiffAdded})
		default:
			if hashBytes(cur) != bh {
				out = append(out, DiffEntry{Path: p, Status: DiffModified})
			}
		}
	}
	return out, nil
}

// DiffLines computes a line diff (LCS-based) rendered unified-style:
// " ctx", "-old", "+new".
func DiffLines(a, b string) []string {
	al := splitLines(a)
	bl := splitLines(b)
	// LCS table
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var out []string
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			out = append(out, " "+al[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			out = append(out, "-"+al[i])
			i++
		default:
			out = append(out, "+"+bl[j])
			j++
		}
	}
	for ; i < n; i++ {
		out = append(out, "-"+al[i])
	}
	for ; j < m; j++ {
		out = append(out, "+"+bl[j])
	}
	return out
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(s, "\n"), "\n")
}
