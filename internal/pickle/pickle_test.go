package pickle

import (
	"testing"

	"repro/internal/core"
	"repro/internal/script"
)

func TestDumpsLoads(t *testing.T) {
	d := script.NewDict()
	d.SetStr("column", script.NewList(script.IntVal(1), script.IntVal(2)))
	d.SetStr("n", script.IntVal(5))
	blob, err := Dumps(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Loads(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !script.Equal(d, back) {
		t.Fatalf("round trip: %s vs %s", d.Repr(), back.Repr())
	}
}

func TestFileHelpers(t *testing.T) {
	fs := core.NewMemFS(nil)
	v := script.NewList(script.StrVal("a"), script.FloatVal(2.5), script.None)
	if err := DumpFile(fs, "proj/input.bin", v); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(fs, "proj/input.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !script.Equal(v, back) {
		t.Fatalf("round trip: %s vs %s", v.Repr(), back.Repr())
	}
	if _, err := LoadFile(fs, "missing.bin"); err == nil {
		t.Fatal("missing file should error")
	}
	// corrupt file
	_ = fs.WriteFile("bad.bin", []byte("garbage"))
	if _, err := LoadFile(fs, "bad.bin"); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestDumpsRejectsUnpicklable(t *testing.T) {
	if _, err := Dumps(&script.FuncVal{Name: "f"}); err == nil {
		t.Fatal("functions must not pickle")
	}
}
