// Package pickle is the stable public name of PyLite's binary value codec —
// the stand-in for Python's pickle in the paper's workflow. The devUDF run
// harness writes UDF input parameters to an input.bin blob with Dump, and
// the generated prologue loads them back inside the script with
// `pickle.load(open('./input.bin','rb'))` (paper Listing 2).
package pickle

import (
	"repro/internal/core"
	"repro/internal/script"
)

// Dumps serializes a PyLite value.
func Dumps(v script.Value) ([]byte, error) { return script.Marshal(v) }

// Loads deserializes a PyLite value.
func Loads(data []byte) (script.Value, error) { return script.Unmarshal(data) }

// DumpFile serializes v into fs at name (the input.bin of Listing 2).
func DumpFile(fs core.FS, name string, v script.Value) error {
	data, err := script.Marshal(v)
	if err != nil {
		return err
	}
	return fs.WriteFile(name, data)
}

// LoadFile deserializes the value stored in fs at name.
func LoadFile(fs core.FS, name string) (script.Value, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return script.Unmarshal(data)
}
