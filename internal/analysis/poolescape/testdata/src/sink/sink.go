// Package sink provides callees with and without release obligations, so
// the fixture package exercises ReleasesParam facts across a package
// boundary.
package sink

import "obs"

// Respond releases tr on every path: callers transfer the obligation.
func Respond(code int, tr *obs.Trace) {
	defer obs.ReleaseTrace(tr)
	_ = code
}

// Borrow merely reads tr; the caller still owns it.
func Borrow(tr *obs.Trace) int { return tr.ID }

// MaybeRelease releases only on one path, so it must NOT get the fact.
func MaybeRelease(tr *obs.Trace, ok bool) {
	if ok {
		obs.ReleaseTrace(tr)
	}
}
