// Package vec mimics the repro scratch pools for poolescape fixtures.
package vec

// GetFloats takes a float scratch slice from the pool.
func GetFloats(n int) []float64 { return make([]float64, n) }

// PutFloats returns a float scratch slice to the pool.
func PutFloats(s []float64) {}

// GetBools takes a bool scratch slice from the pool.
func GetBools(n int) []bool { return make([]bool, n) }

// PutBools returns a bool scratch slice to the pool.
func PutBools(s []bool) {}
