// Package obs mimics the repro trace pool for poolescape fixtures.
package obs

// Trace is a pooled per-query trace.
type Trace struct{ ID int }

var pool []*Trace

// AcquireTrace takes a trace from the pool.
func AcquireTrace() *Trace { return &Trace{} }

// ReleaseTrace returns a trace to the pool.
func ReleaseTrace(t *Trace) { pool = append(pool, t) }
