// Package a exercises the poolescape analyzer.
package a

import (
	"errors"

	"obs"
	"sink"
	"vec"
)

// --- findings ---

func leakOnError(fail bool) error {
	tr := obs.AcquireTrace() // want "tr is not released on every path"
	if fail {
		return errors.New("boom")
	}
	obs.ReleaseTrace(tr)
	return nil
}

func useAfterRelease() int {
	tr := obs.AcquireTrace()
	obs.ReleaseTrace(tr)
	return tr.ID // want "tr used after it was released"
}

func doubleRelease() {
	tr := obs.AcquireTrace()
	obs.ReleaseTrace(tr)
	obs.ReleaseTrace(tr) // want "tr released twice"
}

func discard() {
	obs.AcquireTrace() // want "result of AcquireTrace is discarded"
}

func escapeDeferred() *obs.Trace {
	tr := obs.AcquireTrace()
	defer obs.ReleaseTrace(tr)
	return tr // want "escapes this function but a deferred release"
}

func scratchLeakOnEarlyReturn(n int) {
	buf := vec.GetFloats(n) // want "buf is not released on every path"
	for i := range buf {
		if buf[i] < 0 {
			return
		}
	}
	vec.PutFloats(buf)
}

func loopReacquire(n int) {
	var tr *obs.Trace
	for i := 0; i < n; i++ {
		tr = obs.AcquireTrace() // want "tr reacquired while the previous object was never released"
	}
	if tr != nil {
		obs.ReleaseTrace(tr)
	}
}

// A partial releaser does not earn the fact, so the obligation stays here.
func maybeReleasedLeaks(ok bool) {
	tr := obs.AcquireTrace() // want "tr is not released on every path"
	sink.MaybeRelease(tr, ok)
}

// --- clean ---

func deferRelease() int {
	tr := obs.AcquireTrace()
	defer obs.ReleaseTrace(tr)
	return tr.ID
}

func deferLitRelease() {
	tr := obs.AcquireTrace()
	defer func() { obs.ReleaseTrace(tr) }()
	tr.ID++
}

func releaseBothBranches(ok bool) {
	tr := obs.AcquireTrace()
	if ok {
		tr.ID = 1
		obs.ReleaseTrace(tr)
	} else {
		obs.ReleaseTrace(tr)
	}
}

// A factory transfers ownership to its caller.
func factory() *obs.Trace {
	tr := obs.AcquireTrace()
	tr.ID = 42
	return tr
}

type holder struct{ tr *obs.Trace }

// Storing into a struct transfers ownership to the struct's owner.
func stash(h *holder) {
	tr := obs.AcquireTrace()
	h.tr = tr
}

// Respond carries a ReleasesParam fact: the call is the release.
func releaseViaFact() {
	tr := obs.AcquireTrace()
	sink.Respond(200, tr)
}

func borrowThenRelease() {
	tr := obs.AcquireTrace()
	_ = sink.Borrow(tr)
	obs.ReleaseTrace(tr)
}

func conditionalAcquire(ok bool) {
	var tr *obs.Trace
	if ok {
		tr = obs.AcquireTrace()
	}
	if tr != nil {
		obs.ReleaseTrace(tr)
	}
}

func scratchRoundTrip(n int) float64 {
	buf := vec.GetFloats(n)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	vec.PutFloats(buf)
	bs := vec.GetBools(n)
	vec.PutBools(bs)
	return sum
}

// The escape hatch needs a reason and silences the finding.
func ignored() *obs.Trace {
	tr := obs.AcquireTrace() //poolescape:ignore released by the background sweeper
	if tr.ID > 0 {
		return nil
	}
	return tr
}
