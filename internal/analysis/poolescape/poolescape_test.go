package poolescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolescape"
)

func TestPoolescape(t *testing.T) {
	analysistest.Run(t, "testdata", poolescape.Analyzer, "a")
}
