// Package poolescape defines a flow-sensitive analyzer for pooled-object
// lifecycles: every obs.AcquireTrace / vec.GetFloats / vec.GetBools must
// reach its matching release on every path out of the function, the object
// must not be used after it was released, and an object that escapes the
// function (returned, stored, sent, captured) transfers its release
// obligation to the new owner and must not ALSO be released locally.
//
// The analysis runs a forward may-analysis over the function's control-flow
// graph. Each tracked variable is in a set of possible path states —
// unacquired, held, held-with-deferred-release, released, escaped — and
// statements transition the set:
//
//	tr := obs.AcquireTrace()   held
//	defer obs.ReleaseTrace(tr) held → held+defer (released at every exit)
//	obs.ReleaseTrace(tr)       held → released
//	return tr                  held → escaped (caller owns it now)
//	sink(tr) / s.tr = tr / ...  held → escaped
//
// Passing the object as a plain call argument is a borrow and changes
// nothing — unless the callee carries a ReleasesParam fact (exported for
// functions that release a parameter on every path, like the wire server's
// respondTraced), in which case the call is the release.
//
// Findings: a path reaching the exit still holding (leak), any use while a
// path may have released (use-after-release), releasing twice, reacquiring
// over a held object, escaping an object whose deferred release will still
// run, and discarding an acquisition outright. Suppress a deliberate
// violation with //poolescape:ignore <reason>.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the poolescape check.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: `track pooled objects from acquisition to release on every path

Objects from the trace and scratch pools (obs.AcquireTrace, vec.GetFloats,
vec.GetBools) must be released exactly once on every path, never used after
release, and never released again after escaping to a new owner. Functions
releasing a parameter on every path export a ReleasesParam fact, so passing
a pooled object to them counts as the release. Suppress with
//poolescape:ignore <reason>.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*ReleasesParam)(nil)},
}

// ReleasesParam is a fact on a function: the parameters at Params (indices
// into the signature, receiver excluded) are returned to their pool on
// every path through the function, so a call transfers the obligation.
type ReleasesParam struct {
	Params []int
}

// AFact marks ReleasesParam as a fact type.
func (*ReleasesParam) AFact() {}

// pools maps (package tail segment, function name) of an acquisition to
// the name of its release function.
var pools = map[[2]string]string{
	{"obs", "AcquireTrace"}: "ReleaseTrace",
	{"vec", "GetFloats"}:    "PutFloats",
	{"vec", "GetBools"}:     "PutBools",
}

// releases is the set of (package tail, name) release functions.
var releases = map[[2]string]bool{
	{"obs", "ReleaseTrace"}: true,
	{"vec", "PutFloats"}:    true,
	{"vec", "PutBools"}:     true,
}

func pkgTail(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func keyOf(fn *types.Func) [2]string {
	if fn == nil || fn.Pkg() == nil {
		return [2]string{}
	}
	return [2]string{pkgTail(fn.Pkg().Path()), fn.Name()}
}

// Path states of one tracked variable, combined into a bitmask per block
// (may-analysis: the set of states some path could be in).
const (
	stUnacq    uint8 = 1 << iota // not acquired (or tracking ended benignly)
	stHeld                       // acquired, release still owed
	stHeldD                      // acquired, release deferred (runs at exit)
	stReleased                   // returned to the pool
	stEscaped                    // ownership transferred out of the function
)

func run(pass *analysis.Pass) error {
	// Pass 1: ReleasesParam facts for every declaration, so same-package
	// callers (and, via the fact store, other packages) see them.
	pass.ForEachFunc(func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if lit == nil {
			exportReleasesParam(pass, decl, body)
		}
	})
	// Pass 2: lifecycle checks.
	pass.ForEachFunc(func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		fun := ast.Node(decl)
		if lit != nil {
			fun = lit
		}
		checkFunc(pass, fun, body)
	})
	return nil
}

// exportReleasesParam runs the lifecycle machine over each parameter of
// decl with an initial state of held; if every path ends released, the
// function discharges that parameter's obligation for its callers.
func exportReleasesParam(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	sig, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	params := sig.Type().(*types.Signature).Params()
	var fact ReleasesParam
	var g *cfg.Graph
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if !mentionsReleaseOf(pass, body, p) {
			continue // cheap pre-filter before building the CFG
		}
		if g == nil {
			g = cfg.New(decl, body, pass.CalleeFunc)
		}
		tr := &tracker{pass: pass, v: p, g: g}
		exit := tr.solve(stHeld)
		if exit != 0 && exit&^(stReleased|stHeldD) == 0 {
			fact.Params = append(fact.Params, i)
		}
	}
	if len(fact.Params) > 0 {
		pass.ExportObjectFact(sig, &fact)
	}
}

// mentionsReleaseOf reports whether body contains a call that could
// release obj — a named release function or a ReleasesParam callee taking
// obj as an argument.
func mentionsReleaseOf(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := pass.CalleeFunc(call)
		if fn == nil {
			return true
		}
		if !releases[keyOf(fn)] && !hasReleasesFact(pass, fn) {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasReleasesFact(pass *analysis.Pass, fn *types.Func) bool {
	var f ReleasesParam
	return pass.ImportObjectFact(fn, &f)
}

// checkFunc finds acquisitions in body (this function's own statements,
// not nested literals') and runs the lifecycle machine for each acquired
// variable.
func checkFunc(pass *analysis.Pass, fun ast.Node, body *ast.BlockStmt) {
	g := buildIfNeeded(pass, fun, body)
	if g == nil {
		return
	}
	// Group acquisition statements by tracked variable.
	type acquired struct {
		first   ast.Node
		release string
	}
	vars := map[types.Object]*acquired{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				if es, ok := n.(*ast.ExprStmt); ok {
					if rel, isAcq := acquireCall(pass, es.X); isAcq {
						reportf(pass, es, es.Pos(), "result of %s is discarded; the pooled object can never be %s", acqName(pass, es.X), rel)
					}
				}
				continue
			}
			for i, rhs := range as.Rhs {
				rel, isAcq := acquireCall(pass, rhs)
				if !isAcq {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue // stored through a field/index: owner is the store target
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if prev, ok := vars[obj]; ok {
					prev.release = rel
				} else {
					vars[obj] = &acquired{first: as, release: rel}
				}
			}
		}
	}
	for obj, acq := range vars {
		tr := &tracker{pass: pass, v: obj, g: g}
		exit := tr.solveAndReport(acq.first)
		if exit&stHeld != 0 && !pass.HasDirective(acq.first, "poolescape", "ignore") {
			reportf(pass, acq.first, acq.first.Pos(), "%s is not released on every path: a path reaches return without %s (annotate //poolescape:ignore <reason> if ownership is managed elsewhere)", obj.Name(), acq.release)
		}
	}
}

// buildIfNeeded builds the CFG only when the body mentions a pool function
// at all, keeping the analyzer cheap on the vast majority of functions.
func buildIfNeeded(pass *analysis.Pass, fun ast.Node, body *ast.BlockStmt) *cfg.Graph {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			k := keyOf(pass.CalleeFunc(call))
			if _, ok := pools[k]; ok || releases[k] {
				found = true
			}
		}
		return !found
	})
	if !found {
		return nil
	}
	return cfg.New(fun, body, pass.CalleeFunc)
}

// acquireCall reports whether e is a pool acquisition and names its
// release function.
func acquireCall(pass *analysis.Pass, e ast.Expr) (release string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	release, ok = pools[keyOf(pass.CalleeFunc(call))]
	return release, ok
}

func acqName(pass *analysis.Pass, e ast.Expr) string {
	call, _ := ast.Unparen(e).(*ast.CallExpr)
	if fn := pass.CalleeFunc(call); fn != nil {
		return fn.Name()
	}
	return "acquisition"
}

// reportf reports unless suppressed at n or on the enclosing function.
func reportf(pass *analysis.Pass, n ast.Node, pos token.Pos, format string, args ...any) {
	if pass.HasDirective(n, "poolescape", "ignore") {
		return
	}
	pass.Reportf(pos, format, args...)
}

// events summarizes what one CFG node does to the tracked variable.
type events struct {
	uses         bool
	usePos       token.Pos
	acquire      bool
	release      bool
	releasePos   token.Pos
	deferRelease bool
	escape       bool
	escapePos    token.Pos
	kill         bool // plain reassignment of the variable
}

// tracker runs the state machine for one variable over one CFG.
type tracker struct {
	pass *analysis.Pass
	v    types.Object
	g    *cfg.Graph

	reported map[token.Pos]bool
	evCache  map[ast.Node]events
}

// flow builds the may-analysis the tracker solves: union join over the
// state bitmask, per-node transfer, and nil-test branch refinement.
func (t *tracker) flow(init uint8) cfg.Flow[uint8] {
	return cfg.Flow[uint8]{
		Init:   func() uint8 { return init },
		Bottom: func() uint8 { return 0 },
		Join:   func(a, b uint8) uint8 { return a | b },
		Equal:  func(a, b uint8) bool { return a == b },
		Transfer: func(b *cfg.Block, in uint8) uint8 {
			for _, n := range b.Nodes {
				in = t.apply(t.classify(n), in, nil)
			}
			return in
		},
		TransferEdge: t.nilRefine,
	}
}

// nilRefine sharpens the state along the edges of a `v != nil` / `v == nil`
// branch: only an unacquired variable can be nil (acquisitions never return
// nil, and releasing does not clear the variable). This keeps the common
//
//	if tr != nil { obs.ReleaseTrace(tr) }
//
// epilogue from reading as a leak of the acquired-path state.
func (t *tracker) nilRefine(from, to *cfg.Block, out uint8) uint8 {
	if len(from.Succs) != 2 || len(from.Nodes) == 0 {
		return out
	}
	cond, ok := from.Nodes[len(from.Nodes)-1].(ast.Expr)
	if !ok {
		return out
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	var other ast.Expr
	switch {
	case t.isV(bin.X):
		other = bin.Y
	case t.isV(bin.Y):
		other = bin.X
	default:
		return out
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return out
	}
	if _, isNil := t.pass.TypesInfo.Uses[id].(*types.Nil); !isNil {
		return out
	}
	vNonNil := to == from.Succs[0] // Succs[0] is the condition-true edge
	if bin.Op == token.EQL {
		vNonNil = !vNonNil
	}
	if vNonNil {
		return out &^ stUnacq
	}
	return out & stUnacq
}

// solve runs the pure dataflow and returns the may-state set at exit.
func (t *tracker) solve(init uint8) uint8 {
	res := cfg.Solve(t.g, t.flow(init))
	return res.In[t.g.Exit]
}

// solveAndReport solves, then replays each reachable block from its fixed
// in-state to attribute per-statement findings, and returns the exit set.
func (t *tracker) solveAndReport(acq ast.Node) uint8 {
	t.reported = map[token.Pos]bool{}
	res := cfg.Solve(t.g, t.flow(stUnacq))
	for _, blk := range t.g.Blocks {
		state := res.In[blk]
		if state == 0 {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			state = t.apply(t.classify(n), state, n)
		}
	}
	return res.In[t.g.Exit]
}

// apply transitions the state set through one node's events; when report
// is non-nil, findings are attributed to it.
func (t *tracker) apply(ev events, state uint8, report ast.Node) uint8 {
	warn := func(pos token.Pos, format string, args ...any) {
		if report == nil || t.reported[pos] {
			return
		}
		t.reported[pos] = true
		reportf(t.pass, report, pos, format, args...)
	}
	if ev.uses && !ev.release && !ev.acquire && !ev.kill && state&stReleased != 0 {
		warn(ev.usePos, "%s used after it was released back to the pool", t.v.Name())
	}
	if ev.release {
		if state&stReleased != 0 {
			warn(ev.releasePos, "%s released twice", t.v.Name())
		}
		if state&stEscaped != 0 {
			warn(ev.releasePos, "%s released after ownership escaped this function", t.v.Name())
		}
		state = mapStates(state, func(s uint8) uint8 {
			if s == stHeld || s == stHeldD {
				return stReleased
			}
			return s
		})
	}
	if ev.deferRelease {
		state = mapStates(state, func(s uint8) uint8 {
			if s == stHeld {
				return stHeldD
			}
			return s
		})
	}
	if ev.escape {
		if state&stHeldD != 0 {
			warn(ev.escapePos, "%s escapes this function but a deferred release will still return it to the pool", t.v.Name())
		}
		state = mapStates(state, func(s uint8) uint8 {
			if s == stHeld || s == stHeldD {
				return stEscaped
			}
			return s
		})
	}
	if ev.kill && !ev.acquire {
		if state&stHeld != 0 {
			warn(ev.usePos, "%s reassigned while still holding an unreleased pooled object", t.v.Name())
		}
		state = mapStates(state, func(s uint8) uint8 { return stUnacq })
	}
	if ev.acquire {
		if state&(stHeld|stHeldD) != 0 {
			warn(ev.usePos, "%s reacquired while the previous object was never released", t.v.Name())
		}
		state = stHeld
	}
	if state == 0 {
		state = stUnacq
	}
	return state
}

// mapStates applies f to each state bit present in set.
func mapStates(set uint8, f func(uint8) uint8) uint8 {
	var out uint8
	for s := uint8(1); s != 0; s <<= 1 {
		if set&s != 0 {
			out |= f(s)
		}
	}
	return out
}

func (t *tracker) isV(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && t.isVIdent(id)
}

// isVIdent matches both uses of the variable and its defining identifier
// (the left side of `tr := obs.AcquireTrace()` is a Def, not a Use).
func (t *tracker) isVIdent(id *ast.Ident) bool {
	return t.pass.TypesInfo.Uses[id] == t.v || t.pass.TypesInfo.Defs[id] == t.v
}

// classify computes the tracked variable's events for one CFG node.
func (t *tracker) classify(n ast.Node) events {
	if t.evCache == nil {
		t.evCache = map[ast.Node]events{}
	}
	if ev, ok := t.evCache[n]; ok {
		return ev
	}
	ev := t.classifyUncached(n)
	t.evCache[n] = ev
	return ev
}

func (t *tracker) classifyUncached(n ast.Node) events {
	var ev events

	if ds, ok := n.(*ast.DeferStmt); ok {
		if t.callReleases(ds.Call) {
			ev.deferRelease = true
			ev.uses, ev.usePos = true, ds.Pos()
			return ev
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok && t.bodyReleases(lit.Body) {
			ev.deferRelease = true
			ev.uses, ev.usePos = true, ds.Pos()
			return ev
		}
		// A deferred call that merely uses the object runs at exit; count
		// it as a use so release-before-defer still trips use-after-release
		// conservatively only when the defer line itself follows a release.
		t.walkUses(ds, &ev)
		return ev
	}

	switch s := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if t.escapesVal(r) {
				ev.escape, ev.escapePos = true, r.Pos()
			}
		}
		t.walkUses(s, &ev)
		return ev

	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if t.isV(lhs) {
				// Reassignment; an acquisition RHS is handled below.
				ev.kill = true
				ev.usePos = lhs.Pos()
			}
			if i < len(s.Rhs) {
				if _, isAcq := acquireCall(t.pass, s.Rhs[i]); isAcq && t.isV(lhs) {
					ev.acquire = true
					ev.usePos = lhs.Pos()
				}
			}
		}
		for _, rhs := range s.Rhs {
			if t.escapesVal(rhs) && !blankOnly(s) {
				ev.escape, ev.escapePos = true, rhs.Pos()
			}
		}
		t.walkUses(s, &ev)
		return ev

	case *ast.SendStmt:
		if t.isV(s.Value) {
			ev.escape, ev.escapePos = true, s.Value.Pos()
		}
		t.walkUses(s, &ev)
		return ev
	}

	t.walkUses(n, &ev)
	return ev
}

// escapesVal reports whether using e as a stored/returned value transfers
// ownership of the tracked object: the bare variable, a re-slice of it
// (aliases the pooled backing array), its address, or a composite literal
// embedding it. Reads — fields, elements, lengths, comparisons — produce
// fresh values and do not escape; call results are treated as borrows
// (consistent with statement-position calls).
func (t *tracker) escapesVal(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.isVIdent(e)
	case *ast.SelectorExpr:
		return false
	case *ast.IndexExpr:
		return false
	case *ast.SliceExpr:
		return t.isV(e.X)
	case *ast.StarExpr:
		return false // *v copies the pointee
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.mentions(e.X)
		}
		return false
	case *ast.BinaryExpr:
		return false
	case *ast.CallExpr:
		return false
	case *ast.TypeAssertExpr:
		return t.escapesVal(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.escapesVal(el) {
				return true
			}
		}
		return false
	case nil:
		return false
	}
	return t.mentions(e)
}

// blankOnly reports whether the assignment's only targets are blanks
// (`_ = v` keeps the variable alive without moving ownership).
func blankOnly(s *ast.AssignStmt) bool {
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// walkUses records uses, releases, escapes-by-capture, and fact-based
// releasing calls found anywhere in n's subtree. Nested function literals
// are opaque except that capturing the variable is an escape.
func (t *tracker) walkUses(n ast.Node, ev *events) {
	cfg.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if t.mentionsIn(x.Body) {
				ev.uses, ev.usePos = true, x.Pos()
				ev.escape, ev.escapePos = true, x.Pos()
			}
			return false
		case *ast.CallExpr:
			if t.callReleases(x) {
				ev.release, ev.releasePos = true, x.Pos()
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if t.isV(el) {
					ev.escape, ev.escapePos = true, el.Pos()
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && t.isV(x.X) {
				ev.escape, ev.escapePos = true, x.Pos()
			}
		case *ast.Ident:
			if t.pass.TypesInfo.Uses[x] == t.v {
				ev.uses = true
				if ev.usePos == token.NoPos {
					ev.usePos = x.Pos()
				}
			}

		}
		return true
	})
}

// callReleases reports whether call releases the tracked variable: a named
// pool release with v as an argument, or a callee whose ReleasesParam fact
// covers v's argument position.
func (t *tracker) callReleases(call *ast.CallExpr) bool {
	fn := t.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	if releases[keyOf(fn)] {
		for _, a := range call.Args {
			if t.isV(a) {
				return true
			}
		}
		return false
	}
	var fact ReleasesParam
	if !t.pass.ImportObjectFact(fn, &fact) {
		return false
	}
	for _, idx := range fact.Params {
		if idx < len(call.Args) && t.isV(call.Args[idx]) {
			return true
		}
	}
	return false
}

// bodyReleases reports whether a (deferred) literal's body releases v.
func (t *tracker) bodyReleases(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && t.callReleases(call) {
			found = true
		}
		return !found
	})
	return found
}

func (t *tracker) mentions(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && t.pass.TypesInfo.Uses[id] == t.v {
			found = true
		}
		return !found
	})
	return found
}

func (t *tracker) mentionsIn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && t.pass.TypesInfo.Uses[id] == t.v {
			found = true
		}
		return !found
	})
	return found
}
