// Package goleak defines an analyzer requiring every spawned goroutine to
// be provably bounded: its body (or, for `go f()` spawns, the spawned
// function) must reach a termination signal — a receive from a channel
// (ctx.Done, a done channel, a work queue), a select with a receive case,
// a range over a channel, or a sync.WaitGroup.Done call.
//
// Whether a named spawn target is bounded is resolved through a
// package-local call-graph fixpoint (a function bounded by calling a
// bounded helper counts) and, across packages, through Bounded facts
// exported for package-level functions. A goroutine whose lifetime is
// bounded externally — by process shutdown, by the test harness — carries
// an explicit claim: //goleak:bounded <reason>.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the goleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: `require goroutines to be bounded by a ctx/done signal or WaitGroup

Every go statement must spawn a body that receives from a channel, selects
on one, ranges over one, or calls WaitGroup.Done — directly or through the
functions it calls (cross-package via Bounded facts). Claim an external
bound with //goleak:bounded <reason>.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*Bounded)(nil)},
}

// Bounded is a fact on a function: goroutines running it terminate on a
// recognized signal, so `go pkg.F()` is safe.
type Bounded struct{}

// AFact marks Bounded as a fact type.
func (*Bounded) AFact() {}

func run(pass *analysis.Pass) error {
	b := newBoundedness(pass)

	// Export facts for package-level functions so other packages can spawn
	// them.
	for fn, decl := range b.decls {
		if b.bounded(decl.Body) {
			pass.ExportObjectFact(fn, &Bounded{})
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok || pass.InTestFile(n.Pos()) {
				return true
			}
			b.checkSpawn(gs)
			return true
		})
	}
	return nil
}

// boundedness computes which function bodies reach a termination signal,
// memoized over the package's declarations.
type boundedness struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*ast.BlockStmt]bool
	stack map[*ast.BlockStmt]bool // cycle guard for mutual recursion
}

func newBoundedness(pass *analysis.Pass) *boundedness {
	b := &boundedness{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[*ast.BlockStmt]bool{},
		stack: map[*ast.BlockStmt]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				b.decls[fn] = fd
			}
		}
	}
	return b
}

func (b *boundedness) checkSpawn(gs *ast.GoStmt) {
	if ds := b.pass.Attached(gs, "goleak"); hasReasonedBound(ds) {
		return
	}
	if ds := b.pass.FuncDirectives(gs.Pos(), "goleak"); hasReasonedBound(ds) {
		return
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if b.bounded(fun.Body) {
			return
		}
		b.pass.Reportf(gs.Pos(), "goroutine is not provably bounded: no channel receive, select, or WaitGroup.Done reachable from the spawn (annotate //goleak:bounded <reason> if bounded externally)")
	default:
		fn := b.pass.CalleeFunc(gs.Call)
		if fn == nil {
			b.pass.Reportf(gs.Pos(), "goroutine spawns through a function value; boundedness cannot be checked (annotate //goleak:bounded <reason>)")
			return
		}
		if decl, ok := b.decls[fn]; ok {
			if b.bounded(decl.Body) {
				return
			}
		} else {
			var fact Bounded
			if b.pass.ImportObjectFact(fn, &fact) {
				return
			}
		}
		b.pass.Reportf(gs.Pos(), "goroutine running %s is not provably bounded: it never receives from a channel, selects, or calls WaitGroup.Done (annotate //goleak:bounded <reason> if bounded externally)", fn.Name())
	}
}

// hasReasonedBound accepts only //goleak:bounded directives that carry a
// reason, so every suppression documents the external bound.
func hasReasonedBound(ds []analysis.Directive) bool {
	for _, d := range ds {
		if d.Verb == "bounded" && d.Args != "" {
			return true
		}
	}
	return false
}

// bounded reports whether body reaches a termination signal, following
// calls to same-package functions and Bounded facts from other packages.
func (b *boundedness) bounded(body *ast.BlockStmt) bool {
	if v, ok := b.memo[body]; ok {
		return v
	}
	if b.stack[body] {
		return false // recursion cycle: no signal found on this path
	}
	b.stack[body] = true
	defer delete(b.stack, body)

	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			for _, cs := range n.Body.List {
				cc, ok := cs.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if isReceive(cc.Comm) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := b.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if b.callBounds(n) {
				found = true
			}
		}
		return !found
	})
	b.memo[body] = found
	return found
}

// callBounds reports whether one call is itself a termination signal
// (WaitGroup.Done) or transitively bounded.
func (b *boundedness) callBounds(call *ast.CallExpr) bool {
	fn := b.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Done" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			analysis.NamedFrom(sig.Recv().Type(), "sync", "WaitGroup") {
			return true
		}
	}
	if decl, ok := b.decls[fn]; ok {
		return b.bounded(decl.Body)
	}
	var fact Bounded
	return b.pass.ImportObjectFact(fn, &fact)
}

// isReceive reports whether a select comm clause statement receives.
func isReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	}
	return false
}
