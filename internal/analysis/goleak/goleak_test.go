package goleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "a")
}
