// Package wk provides spawn targets whose boundedness is exported as
// facts and consumed from package a.
package wk

// Pump drains a job channel; it terminates when the channel closes, so it
// earns a Bounded fact.
func Pump(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// Spin never observes a termination signal, so it gets no fact.
func Spin() {
	n := 0
	for {
		n++
	}
}

// Relay is bounded transitively: it hands off to Pump.
func Relay(jobs chan int) {
	Pump(jobs)
}
