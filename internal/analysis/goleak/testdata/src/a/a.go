// Package a exercises the goleak analyzer.
package a

import (
	"context"
	"sync"

	"wk"
)

func work() {}

// --- findings ---

func unboundedLit() {
	go func() { // want "goroutine is not provably bounded"
		for {
			work()
		}
	}()
}

func leakyWorker() {
	for {
		work()
	}
}

func unboundedNamed() {
	go leakyWorker() // want "goroutine running leakyWorker is not provably bounded"
}

func unboundedFact() {
	go wk.Spin() // want "goroutine running Spin is not provably bounded"
}

func dynamicSpawn(fns []func()) {
	go fns[0]() // want "goroutine spawns through a function value"
}

// A bare directive with no reason does not count as a suppression.
func unreasonedDirective() {
	//goleak:bounded
	go leakyWorker() // want "goroutine running leakyWorker is not provably bounded"
}

// --- clean ---

func ctxSelect(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func waitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func rangeChan(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

func doneChan(done chan struct{}) {
	go func() {
		<-done
	}()
}

func namedBounded(jobs chan int) {
	go boundedWorker(jobs)
}

func boundedWorker(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// Bounded through a same-package helper call.
func indirectBounded(jobs chan int) {
	go func() {
		boundedWorker(jobs)
	}()
}

// Bounded through a cross-package fact.
func factBounded(jobs chan int) {
	go wk.Pump(jobs)
	go wk.Relay(jobs)
}

// A reasoned directive claims an external bound.
func reasoned() {
	//goleak:bounded process-lifetime pump, killed at shutdown
	go leakyWorker()
}
