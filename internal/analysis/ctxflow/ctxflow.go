// Package ctxflow defines an analyzer that keeps context threading honest
// in server-side request paths: inside internal/wire, internal/engine, and
// devudf, calls to context.Background()/context.TODO() are banned except
// at API-edge nil-ctx fallbacks annotated //ctxflow:edge. A Background()
// deep in a handler detaches the request from cancellation — the class of
// bug that turns a cancelled query into a leaked worker.
package ctxflow

import (
	"go/ast"

	"repro/internal/analysis"
)

// scopes are the package path segments the check applies to.
var scopes = []string{"internal/wire", "internal/engine", "devudf"}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `forbid context.Background/TODO in server-side request paths

In internal/wire, internal/engine, and devudf, contexts must flow in from
the caller. The only legitimate fresh contexts are nil-ctx fallbacks at
exported API edges; annotate those with //ctxflow:edge.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopes {
		if analysis.PathHasSegments(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.InTestFile(n.Pos()) {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if pass.HasDirective(call, "ctxflow", "edge") {
			return true
		}
		pass.Reportf(call.Pos(), "context.%s() in a request path detaches it from caller cancellation; thread the caller's ctx through (or annotate an API-edge fallback with //ctxflow:edge)", fn.Name())
		return true
	})
	return nil
}
