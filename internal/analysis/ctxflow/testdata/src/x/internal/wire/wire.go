// Package wire exercises the ctxflow analyzer inside a scoped path.
package wire

import "context"

func handleQuery(q string) {
	ctx := context.Background() // want `context.Background\(\) in a request path detaches it from caller cancellation`
	runQuery(ctx, q)
}

func handleLazy(q string) {
	runQuery(context.TODO(), q) // want `context.TODO\(\) in a request path detaches it from caller cancellation`
}

func handleThreaded(ctx context.Context, q string) {
	runQuery(ctx, q)
}

// Open is the package's API edge: a nil ctx from callers of the exported
// surface falls back to Background, which is the one legitimate use.
func Open(ctx context.Context, q string) {
	if ctx == nil {
		ctx = context.Background() //ctxflow:edge nil-ctx fallback of the exported API
	}
	runQuery(ctx, q)
}

func runQuery(ctx context.Context, q string) {
	_ = ctx
	_ = q
}
