// Package other sits outside the ctxflow scopes; fresh contexts here are
// not the analyzer's business.
package other

import "context"

func Fresh() context.Context {
	return context.Background()
}
