// Package lockblock defines an analyzer for the PR 2 wedge class: a
// goroutine that blocks — on a channel, a UDF invocation, or the network —
// while holding a sync.Mutex/RWMutex can deadlock the whole connection
// (the debug-session wedge fixed in PR 2). In internal/debug and
// internal/wire, the analyzer tracks Lock/Unlock pairs within each
// function and reports blocking operations in the held window:
//
//   - channel sends and receives (and selects without a default clause;
//     a select with default is non-blocking and allowed)
//   - Callable.Call — running user UDF code under an engine lock
//   - network IO: net.Conn reads/writes, wire.WriteFrame/ReadFrame/
//     WriteResultStream, and the wire.Client send/recv methods
//
// The analysis is intra-procedural and syntactic: it sees locks taken and
// released in the same function (including defer'd unlocks). Intentional
// sites — e.g. a writer mutex that exists precisely to serialize frame
// writes — carry //lockblock:ok with a reason.
package lockblock

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// scopes are the package path segments the check applies to.
var scopes = []string{"internal/debug", "internal/wire"}

// Analyzer is the lockblock check.
var Analyzer = &analysis.Analyzer{
	Name: "lockblock",
	Doc: `forbid blocking operations while holding a mutex in internal/debug and internal/wire

Channel operations, Callable.Call, and network IO under a held
sync.Mutex/RWMutex are reported. Annotate deliberate serialization points
with //lockblock:ok <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	inScope := false
	for _, s := range scopes {
		if analysis.PathHasSegments(pass.Pkg.Path(), s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	// Check every function body — declarations and literals — each with an
	// empty initial lock set (a goroutine or stored closure does not
	// inherit its creator's locks).
	pass.ForEachFunc(func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil
}

// held tracks mutexes locked on the current path, keyed by the printed
// receiver expression ("dc.wmu").
type held map[string]bool

func (h held) clone() held {
	c := make(held, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	walkStmts(pass, body.List, held{})
}

// walkStmts scans a statement list in order, updating the held set at
// Lock/Unlock calls and checking everything else against it. Branch bodies
// get a copy of the set; changes inside a branch stay in the branch.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, h held) {
	for _, stmt := range stmts {
		walkStmt(pass, stmt, h)
	}
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, h held) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, kind, ok := lockOp(pass, s.X); ok {
			if kind == opLock {
				h[key] = true
			} else {
				delete(h, key)
			}
			return
		}
		scanExpr(pass, s.X, h)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to the end of the
		// function; nothing to update. Other deferred calls run after the
		// body — skip their arguments' evaluation context.
		return
	case *ast.SendStmt:
		if len(h) > 0 {
			reportOp(pass, s, h, "channel send")
		}
		scanExpr(pass, s.Value, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			scanExpr(pass, e, h)
		}
		for _, e := range s.Lhs {
			scanExpr(pass, e, h)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						scanExpr(pass, v, h)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			scanExpr(pass, e, h)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		scanExpr(pass, s.Cond, h)
		walkStmts(pass, s.Body.List, h.clone())
		if s.Else != nil {
			walkStmt(pass, s.Else, h.clone())
		}
	case *ast.BlockStmt:
		walkStmts(pass, s.List, h)
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		if s.Cond != nil {
			scanExpr(pass, s.Cond, h)
		}
		walkStmts(pass, s.Body.List, h.clone())
	case *ast.RangeStmt:
		if len(h) > 0 && isChanType(pass, s.X) {
			reportOp(pass, s, h, "channel receive (range)")
		}
		scanExpr(pass, s.X, h)
		walkStmts(pass, s.Body.List, h.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, h)
		}
		if s.Tag != nil {
			scanExpr(pass, s.Tag, h)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				for _, e := range c.List {
					scanExpr(pass, e, h)
				}
				walkStmts(pass, c.Body, h.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				walkStmts(pass, c.Body, h.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok && c.Comm == nil {
				hasDefault = true
			}
		}
		if len(h) > 0 && !hasDefault {
			reportOp(pass, s, h, "blocking select")
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				walkStmts(pass, c.Body, h.clone())
			}
		}
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, h)
	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; its FuncLit body
		// is checked separately with an empty set.
		return
	}
}

// scanExpr reports blocking operations in an expression evaluated while h
// is non-empty. Function literal bodies are skipped — they are checked as
// their own functions.
func scanExpr(pass *analysis.Pass, e ast.Expr, h held) {
	if e == nil || len(h) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				reportOp(pass, n, h, "channel receive")
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(pass, n); ok {
				reportOp(pass, n, h, what)
			}
		}
		return true
	})
}

const (
	opLock = iota
	opUnlock
)

// lockOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() statements on
// sync.Mutex/RWMutex values and returns the receiver key.
func lockOp(pass *analysis.Pass, e ast.Expr) (key string, kind int, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", 0, false
	}
	tv, okT := pass.TypesInfo.Types[sel.X]
	if !okT {
		return "", 0, false
	}
	if !analysis.NamedFrom(tv.Type, "sync", "Mutex") && !analysis.NamedFrom(tv.Type, "sync", "RWMutex") {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// blockingCall classifies calls that can block indefinitely.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch {
	case recv != nil && fn.Name() == "Call" && analysis.NamedFrom(recv.Type(), "internal/udfrt", "Callable"):
		return "Callable.Call (user UDF code)", true
	case recv != nil && analysis.NamedFrom(recv.Type(), "net", "Conn"):
		switch fn.Name() {
		case "Read", "Write":
			return "net.Conn." + fn.Name(), true
		}
	case recv != nil && analysis.NamedFrom(recv.Type(), "internal/wire", "Client"):
		switch fn.Name() {
		case "send", "recv":
			return "wire.Client." + fn.Name() + " (network IO)", true
		}
	case recv == nil && analysis.PathHasSegments(fn.Pkg().Path(), "internal/wire"):
		switch fn.Name() {
		case "WriteFrame", "ReadFrame", "WriteResultStream":
			return fn.Name() + " (network IO)", true
		}
	}
	return "", false
}

func isChanType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// reportOp reports one blocking operation under the held set, honoring
// //lockblock:ok on the operation line or the enclosing function.
func reportOp(pass *analysis.Pass, n ast.Node, h held, what string) {
	if pass.HasDirective(n, "lockblock", "ok") {
		return
	}
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	locks := strings.Join(keys, ", ")
	pass.Reportf(n.Pos(), "%s while holding %s can wedge the connection; release the lock first (or annotate //lockblock:ok with a reason)", what, locks)
}
