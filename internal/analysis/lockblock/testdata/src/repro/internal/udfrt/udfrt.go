// Package udfrt stubs repro/internal/udfrt for the lockblock fixtures: the
// analyzer matches Callable by name and path suffix.
package udfrt

// Callable runs one user-defined function invocation.
type Callable interface {
	Call(args []any) ([]any, error)
}
