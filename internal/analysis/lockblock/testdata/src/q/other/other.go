// Package other sits outside the lockblock scopes; holding a lock across a
// channel send here is not the analyzer's business.
package other

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) send(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v
}
