// Package wire exercises the lockblock analyzer inside a scoped path.
package wire

import (
	"net"
	"sync"

	"repro/internal/udfrt"
)

// WriteFrame stands in for the real frame writer; package-level functions
// with this name in internal/wire are classified as network IO.
func WriteFrame(c net.Conn, t byte, payload []byte) error { return nil }

// Client mimics the wire client whose send/recv methods hit the network.
type Client struct {
	mu sync.Mutex
}

func (c *Client) send(t byte, payload []byte) error { return nil }

func (c *Client) recv() (byte, []byte, error) { return 0, nil, nil }

type session struct {
	mu sync.Mutex
	ch chan int
}

func (s *session) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func (s *session) badRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while holding s.mu`
}

func (s *session) badRange() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `channel receive \(range\) while holding s.mu`
		_ = v
	}
}

func (s *session) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding s.mu`
	case v := <-s.ch:
		_ = v
	}
}

// A select with a default clause never blocks.
func (s *session) goodSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// Releasing before the send is the fix the analyzer steers toward.
func (s *session) goodSend(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

func (s *session) badConnWrite(c net.Conn, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Write(buf) // want `net.Conn.Write while holding s.mu`
}

func (s *session) badFrame(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	WriteFrame(c, 1, nil) // want `WriteFrame \(network IO\) while holding s.mu`
}

func (s *session) badUDF(fn udfrt.Callable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn.Call(nil) // want `Callable.Call \(user UDF code\) while holding s.mu`
}

func (c *Client) badRoundTrip() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.send(1, nil) // want `wire.Client.send \(network IO\) while holding c.mu`
}

// A deliberate serialization point carries the escape directive.
func (s *session) serializedWrite(c net.Conn, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Write(buf) //lockblock:ok the mutex exists to serialize frame writes
}

type guarded struct {
	mu sync.RWMutex
	ch chan int
}

// A lock taken inside a branch is held for ops inside that branch, and the
// branch's lock set does not leak to statements after the branch.
func (g *guarded) branchScoped(flag bool) {
	if flag {
		g.mu.RLock()
		g.ch <- 1 // want `channel send while holding g.mu`
		g.mu.RUnlock()
	}
	g.ch <- 2
}

// A spawned goroutine does not hold its creator's locks; its body is
// checked separately with an empty set.
func (s *session) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}
