package lockblock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockblock"
)

func TestLockblock(t *testing.T) {
	analysistest.Run(t, "testdata", lockblock.Analyzer, "q/internal/wire", "q/other")
}
