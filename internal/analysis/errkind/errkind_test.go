package errkind_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errkind"
)

func TestErrkind(t *testing.T) {
	analysistest.Run(t, "testdata", errkind.Analyzer, "k/internal/wire")
}
