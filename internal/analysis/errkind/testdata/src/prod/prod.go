// Package prod produces errors whose cancellability is exported as
// Cancellable facts consumed by the wire fixture.
package prod

import "core"

// Interrupted returns a KindCancelled error: cancellable.
func Interrupted() error {
	return core.Wrapf(core.KindCancelled, nil, "interrupted")
}

// Shed returns a KindOverload error: cancellable (retry-critical).
func Shed() error {
	return core.Errorf(core.KindOverload, "connection pool full")
}

// ReadFile fails with a plain IO kind: not cancellable.
func ReadFile() error {
	return core.Errorf(core.KindIO, "short read")
}

// Relay is cancellable transitively through Interrupted.
func Relay() error {
	return Interrupted()
}

// Checked swallows the cancellable error: not cancellable.
func Checked() bool {
	return Interrupted() != nil
}
