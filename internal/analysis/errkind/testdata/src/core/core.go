// Package core mirrors the engine's kinded-error API for the fixtures.
package core

import (
	"errors"
	"fmt"
)

// ErrorKind classifies errors crossing subsystem boundaries.
type ErrorKind int

// The kinds, mirroring the real set.
const (
	KindUnknown ErrorKind = iota
	KindSyntax
	KindName
	KindRuntime
	KindAuth
	KindProtocol
	KindIO
	KindCancelled
	KindOverload
	KindResource
)

// Error is a kinded error.
type Error struct {
	Kind ErrorKind
	Msg  string
	Err  error
}

func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// Errorf builds a kinded error.
func Errorf(kind ErrorKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// Wrapf builds a kinded error wrapping a cause.
func Wrapf(kind ErrorKind, cause error, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...), Err: cause}
}

// KindOf extracts the outermost kind.
func KindOf(err error) ErrorKind {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.Kind
	}
	return KindUnknown
}
