// Package wire exercises the errkind analyzer.
package wire

import (
	"context"

	"core"
	"prod"
)

// --- findings ---

func rekindLocal() error {
	err := prod.Interrupted()
	if err != nil {
		return core.Wrapf(core.KindIO, err, "read failed") // want "re-kinds a possibly cancellation-critical error as KindIO"
	}
	return nil
}

func rekindDirect() error {
	return core.Wrapf(core.KindProtocol, prod.Interrupted(), "handshake lost") // want "re-kinds a possibly cancellation-critical error as KindProtocol"
}

func rekindShed() error {
	err := prod.Shed()
	return core.Wrapf(core.KindUnknown, err, "submit failed") // want "re-kinds a possibly cancellation-critical error as KindUnknown"
}

func rekindTransitive() error {
	err := prod.Relay()
	return core.Wrapf(core.KindRuntime, err, "stage failed") // want "re-kinds a possibly cancellation-critical error as KindRuntime"
}

func rekindCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return core.Wrapf(core.KindRuntime, err, "loop aborted") // want "re-kinds a possibly cancellation-critical error as KindRuntime"
	}
	return nil
}

func localCancel() error {
	return core.Wrapf(core.KindCancelled, nil, "stopping")
}

func rekindViaLocal() error {
	err := localCancel()
	return core.Wrapf(core.KindAuth, err, "session denied") // want "re-kinds a possibly cancellation-critical error as KindAuth"
}

func aliasFlow() error {
	err := prod.Interrupted()
	e2 := err
	return core.Wrapf(core.KindName, e2, "lookup failed") // want "re-kinds a possibly cancellation-critical error as KindName"
}

// --- clean ---

// Reassignment kills the mark: by the Wrapf the error is a plain IO error.
func reassignedOK() error {
	err := prod.Interrupted()
	if err != nil {
		return err
	}
	err = prod.ReadFile()
	if err != nil {
		return core.Wrapf(core.KindIO, err, "read failed")
	}
	return nil
}

// Wrapping with the same critical kind preserves the classification.
func preserveKind() error {
	err := prod.Interrupted()
	return core.Wrapf(core.KindCancelled, err, "stage aborted")
}

// A computed kind (core.KindOf) is always preserving.
func preserveDynamic() error {
	err := prod.Interrupted()
	return core.Wrapf(core.KindOf(err), err, "stage aborted")
}

// Wrapping a non-cancellable error under any kind is fine.
func plainWrap() error {
	err := prod.ReadFile()
	return core.Wrapf(core.KindIO, err, "loading snapshot")
}

// A producer that swallows the error does not taint its callers.
func checkedOK() error {
	if prod.Checked() {
		return core.Wrapf(core.KindProtocol, prod.ReadFile(), "probe failed")
	}
	return nil
}

// The escape hatch needs a reason and silences the finding.
func deliberate() error {
	err := prod.Interrupted()
	//errkind:ok shutdown surfaces as a protocol error by wire contract
	return core.Wrapf(core.KindProtocol, err, "connection closing")
}
