// Package errkind defines an analyzer protecting the retryability
// classification of errors crossing the engine/wire boundary.
//
// core.KindOf resolves an error's kind from the outermost core.Error in
// its chain, and the wire client's retry loop and the engine's
// cancellation paths key off exactly two kinds: KindOverload (safe to
// retry — the server shed the request before executing it) and
// KindCancelled (the statement was aborted). Wrapping such an error with
// core.Wrapf under a different literal kind silently re-classifies it:
// the retry loop stops retrying sheds, IsCancelled stops recognizing
// aborts, and the client sees a lie.
//
// The analyzer tracks, flow-sensitively over each function's CFG, which
// local error variables may currently hold a cancellation-critical error —
// seeded by calls to functions carrying a Cancellable fact (exported
// bottom-up: constructors of KindCancelled/KindOverload errors and
// functions propagating them) and by context.Context.Err — and reports
// any core.Wrapf that re-kinds one under a different literal kind.
// Deliberate reclassification is annotated //errkind:ok <reason>.
package errkind

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the errkind check.
var Analyzer = &analysis.Analyzer{
	Name: "errkind",
	Doc: `forbid re-kinding cancellation/overload errors with core.Wrapf

An error that may carry KindCancelled or KindOverload (tracked through
Cancellable facts and per-function dataflow) must keep its kind when
wrapped: use the same kind, or core.KindOf(err). Wrapping it under another
literal kind hides it from core.Retryable and core.IsCancelled. Annotate
deliberate reclassification with //errkind:ok <reason>.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*Cancellable)(nil)},
}

// Cancellable is a fact on a function: it may return an error whose
// outermost kind is KindCancelled or KindOverload.
type Cancellable struct{}

// AFact marks Cancellable as a fact type.
func (*Cancellable) AFact() {}

// scopes lists the package path segments whose Wrapf calls are checked.
var scopes = []string{"engine", "wire", "devudf", "udfrt"}

// preservingKinds are the literal kinds a cancellable error may be
// re-wrapped with without losing its classification.
var preservingKinds = map[string]bool{"KindCancelled": true, "KindOverload": true}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, local: map[*types.Func]*ast.FuncDecl{}, cancellable: map[*types.Func]bool{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.local[fn] = fd
				}
			}
		}
	}

	// Bottom-up fixpoint: a function is cancellable if it can return a
	// cancellation-critical error, directly or through a cancellable call.
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.local {
			if c.cancellable[fn] {
				continue
			}
			if c.returnsCancellable(fn, fd) {
				c.cancellable[fn] = true
				changed = true
			}
		}
	}
	for fn := range c.cancellable {
		pass.ExportObjectFact(fn, &Cancellable{})
	}

	inScope := false
	for _, s := range scopes {
		if analysis.PathHasSegments(pass.Pkg.Path(), s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}

	pass.ForEachFunc(func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		var fun ast.Node = decl
		if lit != nil {
			fun = lit
		}
		c.checkFunc(fun, body)
	})
	return nil
}

type checker struct {
	pass        *analysis.Pass
	local       map[*types.Func]*ast.FuncDecl
	cancellable map[*types.Func]bool
}

// isCancellableFn reports whether calling fn may yield a
// cancellation-critical error.
func (c *checker) isCancellableFn(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.cancellable[fn] {
		return true
	}
	if fn.Name() == "Err" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			analysis.NamedFrom(sig.Recv().Type(), "context", "Context") {
			return true
		}
	}
	var fact Cancellable
	return c.pass.ImportObjectFact(fn, &fact)
}

// hasCancellableCall reports whether n's subtree contains a call to a
// cancellable function or a cancellable core constructor.
func (c *checker) hasCancellableCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, isCtor := c.coreCtorKind(call); isCtor {
			if preservingKinds[kind] {
				found = true
			}
			return true
		}
		if c.isCancellableFn(c.pass.CalleeFunc(call)) {
			found = true
		}
		return !found
	})
	return found
}

// coreCtorKind recognizes core.Errorf / core.Wrapf calls and returns the
// literal kind name of the first argument ("" when the kind is computed,
// e.g. core.KindOf(err) — which is always preserving).
func (c *checker) coreCtorKind(call *ast.CallExpr) (kind string, ok bool) {
	fn := c.pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !analysis.PathHasSegments(fn.Pkg().Path(), "core") {
		return "", false
	}
	if fn.Name() != "Errorf" && fn.Name() != "Wrapf" {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	if sel, okSel := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); okSel {
		if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
			if _, isConst := obj.(*types.Const); isConst {
				return sel.Sel.Name, true
			}
		}
	}
	if id, okID := ast.Unparen(call.Args[0]).(*ast.Ident); okID {
		if _, isConst := c.pass.TypesInfo.Uses[id].(*types.Const); isConst {
			return id.Name, true
		}
	}
	return "", true
}

// returnsCancellable reports whether fd may return a cancellation-critical
// error: it has an error result and either constructs one, returns the
// result of a cancellable call, or returns a variable assigned from one.
func (c *checker) returnsCancellable(fn *types.Func, fd *ast.FuncDecl) bool {
	sig := fn.Type().(*types.Signature)
	hasErr := false
	for i := 0; i < sig.Results().Len(); i++ {
		if analysis.IsErrorType(sig.Results().At(i).Type()) {
			hasErr = true
		}
	}
	if !hasErr {
		return false
	}

	// Variables assigned (anywhere) from a cancellable call.
	tainted := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		rhsCancellable := false
		for _, r := range as.Rhs {
			if c.hasCancellableCall(r) {
				rhsCancellable = true
			}
		}
		if !rhsCancellable {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(c.pass, id); obj != nil && analysis.IsErrorType(obj.Type()) {
					tainted[obj] = true
				}
			}
		}
		return true
	})

	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if c.hasCancellableCall(res) {
				found = true
				return false
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := objOf(c.pass, id); obj != nil && tainted[obj] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// ---- flow-sensitive check of one function ----

// state is a bitmask over the function's tracked error variables: bit i
// set means variable i may currently hold a cancellation-critical error.
type state uint64

const maxTracked = 64

func (c *checker) checkFunc(fun ast.Node, body *ast.BlockStmt) {
	// Cheap pre-filter: a function with no core.Wrapf call needs no CFG.
	hasWrapf := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := c.pass.CalleeFunc(call); fn != nil && fn.Name() == "Wrapf" &&
				fn.Pkg() != nil && analysis.PathHasSegments(fn.Pkg().Path(), "core") {
				hasWrapf = true
			}
		}
		return !hasWrapf
	})
	if !hasWrapf {
		return
	}

	// Index the local error-typed variables (up to 64; the rest untracked).
	idx := map[types.Object]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && analysis.IsErrorType(v.Type()) && len(idx) < maxTracked {
			if _, seen := idx[obj]; !seen {
				idx[obj] = len(idx)
			}
		}
		return true
	})

	g := cfg.New(fun, body, c.pass.CalleeFunc)
	flow := cfg.Flow[state]{
		Init:     func() state { return 0 },
		Bottom:   func() state { return 0 },
		Join:     func(a, b state) state { return a | b },
		Equal:    func(a, b state) bool { return a == b },
		Transfer: func(b *cfg.Block, in state) state { return c.transferBlock(b, in, idx) },
	}
	res := cfg.Solve(g, flow)

	// Replay reachable blocks from their fixed entry states and report
	// non-preserving Wrapf calls over may-cancellable operands.
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		st := res.In[b]
		for _, n := range b.Nodes {
			c.checkNode(n, st, idx)
			st = c.transferNode(n, st, idx)
		}
	}
}

func (c *checker) transferBlock(b *cfg.Block, in state, idx map[types.Object]int) state {
	st := in
	for _, n := range b.Nodes {
		st = c.transferNode(n, st, idx)
	}
	return st
}

// transferNode updates the tracked-variable states for one CFG node.
// Assignments inside nested function literals still apply: the literal
// may run on this path and the state is a may-analysis.
func (c *checker) transferNode(n ast.Node, st state, idx map[types.Object]int) state {
	cfg.Inspect(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		cancellable := false
		for _, r := range as.Rhs {
			if c.hasCancellableCall(r) || c.isMarkedVar(r, st, idx) {
				cancellable = true
			}
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(c.pass, id)
			if obj == nil {
				continue
			}
			i, tracked := idx[obj]
			if !tracked {
				continue
			}
			if cancellable {
				st |= 1 << i
			} else {
				st &^= 1 << i
			}
		}
		return true
	})
	return st
}

// isMarkedVar reports whether expr is a tracked variable whose bit is set.
func (c *checker) isMarkedVar(expr ast.Expr, st state, idx map[types.Object]int) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(c.pass, id)
	if obj == nil {
		return false
	}
	i, tracked := idx[obj]
	return tracked && st&(1<<i) != 0
}

// checkNode reports re-kinding Wrapf calls in one CFG node under the
// current state.
func (c *checker) checkNode(n ast.Node, st state, idx map[types.Object]int) {
	cfg.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false // literals are checked as functions in their own right
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := c.pass.CalleeFunc(call)
		if fn == nil || fn.Name() != "Wrapf" || fn.Pkg() == nil ||
			!analysis.PathHasSegments(fn.Pkg().Path(), "core") || len(call.Args) < 2 {
			return true
		}
		kind, ok := c.coreCtorKind(call)
		if !ok || kind == "" || preservingKinds[kind] {
			return true
		}
		cause := call.Args[1]
		cancellable := c.isMarkedVar(cause, st, idx) || c.hasCancellableCall(cause)
		if !cancellable {
			return true
		}
		if c.suppressed(call) {
			return true
		}
		c.pass.Reportf(call.Pos(),
			"core.Wrapf re-kinds a possibly cancellation-critical error as %s, hiding KindCancelled/KindOverload from core.KindOf and the retry path; wrap with core.KindOf(err) or the original kind (annotate //errkind:ok <reason> if the reclassification is deliberate)", kind)
		return true
	})
}

// suppressed reports a reasoned //errkind:ok directive on the call's
// statement line or enclosing function.
func (c *checker) suppressed(n ast.Node) bool {
	for _, d := range c.pass.Attached(n, "errkind") {
		if d.Verb == "ok" && d.Args != "" {
			return true
		}
	}
	for _, d := range c.pass.FuncDirectives(n.Pos(), "errkind") {
		if d.Verb == "ok" && d.Args != "" {
			return true
		}
	}
	return false
}
