package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

const passSrc = `// Package p is the framework test subject.
package p

type Column struct{ n int }

func (c *Column) Reset() { c.n = 0 }

//tool:marked on the declaration
func annotated() {
	c := &Column{}
	c.Reset()
	helper()
	//tool:inner inside the body
	_ = len("x")
}

//tool:first
//tool:second with args
func stacked() {}

func helper() {
	_ = make([]int, 1) //tool:same line attach
}

// tool:spaced is prose, not a directive (note the space).
func prose() {}
`

// buildPass parses and typechecks passSrc (no imports, so no importer is
// needed) and wraps it in a Pass.
func buildPass(t *testing.T, filename string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, passSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	pkg, err := (&types.Config{}).Check("q/internal/testpkg", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{
		Analyzer:  &analysis.Analyzer{Name: "t", Doc: "t", Run: func(*analysis.Pass) error { return nil }},
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(analysis.Diagnostic) {},
	}
}

func findFunc(pass *analysis.Pass, name string) *ast.FuncDecl {
	var out *ast.FuncDecl
	pass.Preorder(func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == name {
			out = fd
		}
		return true
	})
	return out
}

func TestPathHasSegments(t *testing.T) {
	cases := []struct {
		path, want string
		ok         bool
	}{
		{"repro/internal/wire", "internal/wire", true},
		{"a/internal/wire", "internal/wire", true},
		{"internal/wire", "internal/wire", true},
		{"repro/internal/wireframe", "internal/wire", false},
		{"repro/notinternal/wire", "internal/wire", false},
		{"repro/internal/engine/vec", "internal/engine/vec", true},
		{"repro/internal/engine", "internal/engine/vec", false},
		{"devudf", "devudf", true},
		{"repro/cmd/devudf", "devudf", true},
	}
	for _, c := range cases {
		if got := analysis.PathHasSegments(c.path, c.want); got != c.ok {
			t.Errorf("PathHasSegments(%q, %q) = %v, want %v", c.path, c.want, got, c.ok)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	pass := buildPass(t, "p.go")
	col := pass.Pkg.Scope().Lookup("Column").Type()
	if !analysis.NamedFrom(col, "internal/testpkg", "Column") {
		t.Errorf("NamedFrom failed on the defined type")
	}
	if !analysis.NamedFrom(types.NewPointer(col), "internal/testpkg", "Column") {
		t.Errorf("NamedFrom failed to deref a pointer")
	}
	if analysis.NamedFrom(col, "internal/other", "Column") {
		t.Errorf("NamedFrom matched the wrong path")
	}
	if analysis.NamedFrom(col, "internal/testpkg", "Row") {
		t.Errorf("NamedFrom matched the wrong name")
	}
	if analysis.NamedFrom(types.Typ[types.Int], "internal/testpkg", "Column") {
		t.Errorf("NamedFrom matched a basic type")
	}

	errType := types.Universe.Lookup("error").Type()
	if !analysis.IsErrorType(errType) {
		t.Errorf("IsErrorType(error) = false")
	}
	if analysis.IsErrorType(types.Typ[types.String]) {
		t.Errorf("IsErrorType(string) = true")
	}
	if analysis.IsErrorType(nil) {
		t.Errorf("IsErrorType(nil) = true")
	}
}

func TestPassFileAndReport(t *testing.T) {
	pass := buildPass(t, "p.go")
	fd := findFunc(pass, "annotated")
	if pass.FileOf(fd.Pos()) != pass.Files[0] {
		t.Errorf("FileOf missed the containing file")
	}
	if pass.FileOf(token.NoPos) != nil {
		t.Errorf("FileOf(NoPos) found a file")
	}
	if pass.InTestFile(fd.Pos()) {
		t.Errorf("p.go is not a test file")
	}

	testPass := buildPass(t, "p_test.go")
	if !testPass.InTestFile(findFunc(testPass, "annotated").Pos()) {
		t.Errorf("p_test.go positions should be in a test file")
	}

	var got []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { got = append(got, d) }
	pass.Reportf(fd.Pos(), "count %d", 2)
	if len(got) != 1 || got[0].Message != "count 2" || got[0].Pos != fd.Pos() {
		t.Errorf("Reportf recorded %+v", got)
	}
}

func TestDirectives(t *testing.T) {
	pass := buildPass(t, "p.go")

	annotated := findFunc(pass, "annotated")
	if ds := pass.Attached(annotated, "tool"); len(ds) != 1 || ds[0].Verb != "marked" || ds[0].Args != "on the declaration" {
		t.Errorf("Attached(annotated) = %+v", ds)
	}
	if ds := pass.Within(annotated, "tool"); len(ds) != 1 || ds[0].Verb != "inner" {
		t.Errorf("Within(annotated) = %+v", ds)
	}
	if ds := pass.FuncDirectives(annotated.Body.Pos(), "tool"); len(ds) != 1 || ds[0].Verb != "marked" {
		t.Errorf("FuncDirectives(annotated) = %+v", ds)
	}
	if !pass.HasDirective(annotated, "tool", "marked") {
		t.Errorf("HasDirective missed the declaration directive")
	}
	if pass.HasDirective(annotated, "tool", "absent") {
		t.Errorf("HasDirective invented a verb")
	}
	if pass.HasDirective(annotated, "other", "marked") {
		t.Errorf("HasDirective matched the wrong tool")
	}

	// Stacked directives above one declaration are all attached.
	stacked := findFunc(pass, "stacked")
	ds := pass.Attached(stacked, "tool")
	if len(ds) != 2 {
		t.Fatalf("Attached(stacked) = %+v, want both of the stack", ds)
	}
	verbs := []string{ds[0].Verb, ds[1].Verb}
	if !(verbs[0] == "first" && verbs[1] == "second" || verbs[0] == "second" && verbs[1] == "first") {
		t.Errorf("stacked verbs = %v", verbs)
	}

	// Same-line attachment inside a body, visible from the statement.
	helper := findFunc(pass, "helper")
	var makeCall ast.Node
	ast.Inspect(helper, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			makeCall = c
		}
		return true
	})
	if !pass.HasDirective(makeCall, "tool", "same") {
		t.Errorf("same-line directive not attached to the statement")
	}

	// "// tool:spaced" has a space after the slashes: prose, not a directive.
	prose := findFunc(pass, "prose")
	if ds := pass.Attached(prose, "tool"); len(ds) != 0 {
		t.Errorf("prose comment parsed as directive: %+v", ds)
	}
}

func TestCalleeFunc(t *testing.T) {
	pass := buildPass(t, "p.go")
	annotated := findFunc(pass, "annotated")
	var calls []*ast.CallExpr
	ast.Inspect(annotated, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	var names []string
	for _, c := range calls {
		if fn := pass.CalleeFunc(c); fn != nil {
			names = append(names, fn.Name())
		}
	}
	joined := strings.Join(names, ",")
	if joined != "Reset,helper" {
		t.Errorf("resolved callees = %q, want method and function but not the builtin", joined)
	}
}
