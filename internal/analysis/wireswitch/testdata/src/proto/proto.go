// Package proto exercises the wireswitch analyzer with a miniature wire
// protocol: direction-commented Msg constants plus dispatch and matcher
// switches over them.
package proto

const (
	MsgAuth  byte = 1 // client → server: handshake
	MsgQuery byte = 2 // client → server: run SQL
	MsgPing  byte = 3 // client -> server: keepalive (ASCII arrow also accepted)
	MsgClose byte = 4 // client → server: hang up

	MsgResult byte = 16 // server → client: result header
	MsgErr    byte = 17 // server → client: error reply
	MsgBye    byte = 18 // server → client: goodbye

	//wireswitch:ignore
	MsgLegacy byte = 100 // client → server: superseded frame, never dispatched

	MsgOdd byte = 99 // want `MsgOdd has no direction comment`
)

// dispatchExhaustive handles every client→server message (MsgLegacy is
// excluded everywhere by its const-level ignore).
func dispatchExhaustive(t byte) {
	//wireswitch:dispatch client-to-server
	switch t {
	case MsgAuth:
	case MsgQuery:
	case MsgPing:
	case MsgClose:
	}
}

// dispatchMissing forgets MsgClose.
func dispatchMissing(t byte) {
	//wireswitch:dispatch client-to-server
	switch t { // want `dispatch switch does not handle MsgClose`
	case MsgAuth:
	case MsgQuery:
	case MsgPing:
	}
}

// dispatchWithIgnore excludes MsgClose with a named, reasoned ignore.
func dispatchWithIgnore(t byte) {
	//wireswitch:dispatch client-to-server
	//wireswitch:ignore MsgClose -- handled on the frame loop before dispatch
	switch t {
	case MsgAuth:
	case MsgQuery:
	case MsgPing:
	}
}

// dispatchWrongDirection is a server→client dispatcher with a stray
// client→server case.
func dispatchWrongDirection(t byte) {
	//wireswitch:dispatch server-to-client
	switch t { // want `dispatch switch for server → client messages has a case for MsgQuery, which flows the other way`
	case MsgResult:
	case MsgErr:
	case MsgBye:
	case MsgQuery:
	}
}

// undirected names three message types but declares nothing.
func undirected(t byte) {
	switch t { // want `switch over 3 message types needs a wireswitch directive`
	case MsgAuth:
	case MsgQuery:
	case MsgPing:
	}
}

// matcher is exempted wholesale: it matches one reply, it does not dispatch.
func matcher(t byte) bool {
	//wireswitch:ignore reply matcher for a single round trip, not a dispatch point
	switch t {
	case MsgResult, MsgErr, MsgBye:
		return true
	}
	return false
}

// smallSwitch names fewer than three message types and is out of scope.
func smallSwitch(t byte) bool {
	switch t {
	case MsgResult:
		return true
	case MsgErr:
		return false
	}
	return false
}
