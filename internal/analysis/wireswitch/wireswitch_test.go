package wireswitch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireswitch"
)

func TestWireswitch(t *testing.T) {
	analysistest.Run(t, "testdata", wireswitch.Analyzer, "proto")
}
