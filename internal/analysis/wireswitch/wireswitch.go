// Package wireswitch defines an analyzer that keeps the wire protocol's
// message-type switches exhaustive. The Msg* constants in
// internal/wire/proto.go and debugproto.go carry direction comments
// ("client → server" / "server → client"); every dispatch switch over a
// message type must handle all constants of its direction or say why not.
// Adding a new message without teaching every dispatch point about it then
// fails vet instead of failing at runtime.
//
// Contract, enforced per tagged switch whose cases name 3 or more Msg*
// constants:
//
//   - //wireswitch:dispatch client-to-server (or server-to-client) declares
//     the switch a dispatch point: every constant of that direction must
//     appear as a case, minus those listed in a
//     //wireswitch:ignore MsgA MsgB -- reason
//     directive inside or above the switch. A case naming a constant of the
//     opposite direction is reported too.
//   - //wireswitch:ignore reason (no Msg names) exempts a non-dispatch
//     matcher switch (e.g. a reply matcher expecting one of two frames).
//   - a bare //wireswitch:ignore on a Msg constant's declaration excludes
//     it from exhaustiveness everywhere.
//
// A qualifying switch with no directive at all is reported: dispatch
// switches must self-declare so the analyzer cannot silently miss one.
package wireswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wireswitch check.
var Analyzer = &analysis.Analyzer{
	Name: "wireswitch",
	Doc: `require message-type switches to handle every Msg* constant of their direction

Switches naming 3+ Msg* constants must carry //wireswitch:dispatch
<direction> (checked exhaustive against the direction comments on the
constants) or //wireswitch:ignore <reason>.`,
	Run: run,
}

const (
	dirUnknown = iota
	dirC2S
	dirS2C
)

type msgConst struct {
	obj     *types.Const
	dir     int
	ignored bool // const-level //wireswitch:ignore
}

func run(pass *analysis.Pass) error {
	consts := collectMsgConsts(pass)
	if len(consts) == 0 {
		return nil // not a wire protocol package
	}
	byDir := map[int][]string{}
	for name, mc := range consts {
		if !mc.ignored && mc.dir != dirUnknown {
			byDir[mc.dir] = append(byDir[mc.dir], name)
		}
	}
	pass.Preorder(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil || pass.InTestFile(n.Pos()) {
			return true
		}
		checkSwitch(pass, sw, consts, byDir)
		return true
	})
	return nil
}

// collectMsgConsts finds the package's Msg* constants and classifies their
// direction from the declaration comments.
func collectMsgConsts(pass *analysis.Pass) map[string]msgConst {
	out := map[string]msgConst{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Msg") || len(name.Name) <= 3 {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					mc := msgConst{obj: c, dir: direction(vs)}
					for _, d := range pass.Attached(vs, "wireswitch") {
						if d.Verb == "ignore" {
							mc.ignored = true
						}
					}
					out[name.Name] = mc
					if mc.dir == dirUnknown && !mc.ignored {
						pass.Reportf(name.Pos(), "%s has no direction comment (\"client → server\" or \"server → client\"); wireswitch cannot check exhaustiveness for it", name.Name)
					}
				}
			}
		}
	}
	return out
}

// direction reads the doc or line comment of a const spec.
func direction(vs *ast.ValueSpec) int {
	text := ""
	if vs.Doc != nil {
		text += vs.Doc.Text()
	}
	if vs.Comment != nil {
		text += vs.Comment.Text()
	}
	switch {
	case strings.Contains(text, "client → server"), strings.Contains(text, "client -> server"):
		return dirC2S
	case strings.Contains(text, "server → client"), strings.Contains(text, "server -> client"):
		return dirS2C
	}
	return dirUnknown
}

// checkSwitch applies the exhaustiveness contract to one tagged switch.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, consts map[string]msgConst, byDir map[int][]string) {
	cases := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := msgRef(pass, e, consts); ok {
				cases[name] = true
			}
		}
	}
	if len(cases) < 3 {
		return
	}

	var dispatch, blanket bool
	wantDir := dirUnknown
	ignored := map[string]bool{}
	ds := append(pass.Attached(sw, "wireswitch"), pass.Within(sw, "wireswitch")...)
	for _, d := range ds {
		switch d.Verb {
		case "dispatch":
			dispatch = true
			dir, _, _ := strings.Cut(d.Args, " ")
			switch dir {
			case "client-to-server":
				wantDir = dirC2S
			case "server-to-client":
				wantDir = dirS2C
			default:
				pass.Reportf(d.Pos, "wireswitch:dispatch needs a direction: client-to-server or server-to-client")
				return
			}
		case "ignore":
			names, ok := ignoreNames(d.Args)
			if !ok {
				blanket = true // reason-only ignore: exempt the whole switch
				continue
			}
			for _, nm := range names {
				if _, known := consts[nm]; !known {
					pass.Reportf(d.Pos, "wireswitch:ignore names unknown constant %s", nm)
				}
				ignored[nm] = true
			}
		}
	}
	if blanket && !dispatch {
		return
	}
	if !dispatch {
		pass.Reportf(sw.Pos(), "switch over %d message types needs a wireswitch directive: //wireswitch:dispatch <direction> if it is a dispatch point, or //wireswitch:ignore <reason> if not", len(cases))
		return
	}

	var missing []string
	for _, name := range byDir[wantDir] {
		if !cases[name] && !ignored[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(sw.Pos(), "dispatch switch does not handle %s; add a case or list it in //wireswitch:ignore with a reason", name)
	}
	for name := range cases {
		if mc := consts[name]; mc.dir != dirUnknown && mc.dir != wantDir {
			pass.Reportf(sw.Pos(), "dispatch switch for %s messages has a case for %s, which flows the other way", dirString(wantDir), name)
		}
	}
}

// ignoreNames parses the Msg names of an ignore directive. Args of the
// form "MsgA MsgB -- reason" yield the names; args that are only prose
// (no leading Msg token) mean a blanket ignore and return ok=false.
func ignoreNames(args string) ([]string, bool) {
	fields := strings.Fields(args)
	var names []string
	for _, f := range fields {
		if f == "--" {
			break
		}
		if !strings.HasPrefix(f, "Msg") {
			break
		}
		names = append(names, f)
	}
	return names, len(names) > 0
}

// msgRef resolves a case expression to a known Msg constant name.
func msgRef(pass *analysis.Pass, e ast.Expr, consts map[string]msgConst) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok {
		return "", false
	}
	mc, known := consts[id.Name]
	if !known || mc.obj != obj {
		return "", false
	}
	return id.Name, true
}

func dirString(dir int) string {
	if dir == dirC2S {
		return "client → server"
	}
	return "server → client"
}
