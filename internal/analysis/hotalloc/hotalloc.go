// Package hotalloc defines an analyzer that flags per-row allocations
// inside the loops of functions annotated //vec:hot — the vectorized
// kernels whose whole point (PR 4, the paper's vectorized-execution
// argument) is amortizing per-value overhead across a batch. A string
// conversion, interface boxing, or fmt call inside such a loop reintroduces
// the per-row cost the kernel exists to remove.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `flag per-row allocations in loops of //vec:hot functions

Inside for/range loops of functions marked //vec:hot: string<->[]byte
conversions, interface boxing at call sites, fmt.* / strconv formatting
calls, make/new, and allocating composite literals are reported. Suppress
a deliberate allocation with //hotalloc:ok.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.ForEachFunc(func(fd *ast.FuncDecl, lit *ast.FuncLit, _ *ast.BlockStmt) {
		// Literals are walked within their hot enclosing declaration, with
		// the loop depth carried across; only declarations anchor a check.
		if lit != nil || fd == nil || !isHot(pass, fd) {
			return
		}
		checkHot(pass, fd)
	})
	return nil
}

func isHot(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, d := range pass.FuncDirectives(fd.Body.Pos(), "vec") {
		if d.Verb == "hot" {
			return true
		}
	}
	return false
}

// checkHot walks fd's body tracking loop depth. Function literals are
// walked too (kernels often run as closures under Pol.Run); the loop depth
// carries across, since the closure runs on the same hot path.
func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				if n.Cond != nil {
					walk(n.Cond, inLoop)
				}
				if n.Post != nil {
					walk(n.Post, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.X, inLoop)
				walk(n.Body, true)
				return false
			case *ast.CallExpr:
				if inLoop {
					checkCall(pass, n)
				}
				return true
			case *ast.CompositeLit:
				if inLoop && allocatingLit(pass, n) {
					report(pass, n, "composite literal allocates per iteration")
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, false)
}

func report(pass *analysis.Pass, n ast.Node, what string) {
	if pass.HasDirective(n, "hotalloc", "ok") {
		return
	}
	pass.Reportf(n.Pos(), "%s inside a loop of a //vec:hot function; hoist it out of the per-row path (or annotate //hotalloc:ok)", what)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Conversions: T(x) where the callee is a type.
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && allocatingConversion(pass, tv.Type, call.Args[0]) {
			report(pass, call, "string conversion allocates per iteration")
		}
		return
	}
	// Built-ins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(pass, call, b.Name()+" allocates per iteration")
			}
			return
		}
	}
	fn := pass.CalleeFunc(call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			report(pass, call, "fmt."+fn.Name()+" allocates and reflects per iteration")
			return
		case "strconv":
			if isFormatting(fn.Name()) {
				report(pass, call, "strconv."+fn.Name()+" allocates a string per iteration")
				return
			}
		}
	}
	checkBoxing(pass, call)
}

func isFormatting(name string) bool {
	switch name {
	case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "FormatComplex", "Quote", "QuoteRune":
		return true
	}
	return false
}

// checkBoxing reports concrete values passed to interface-typed
// parameters — each such call boxes the value onto the heap.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		report(pass, arg, "passing a concrete value to an interface parameter boxes it per iteration")
	}
}

// allocatingConversion reports conversions that copy memory: between
// string and byte/rune slices, or from byte/rune/integers to string.
func allocatingConversion(pass *analysis.Pass, dst types.Type, arg ast.Expr) bool {
	at, ok := pass.TypesInfo.Types[arg]
	if !ok || at.Type == nil {
		return false
	}
	src := at.Type.Underlying()
	d := dst.Underlying()
	if isString(d) {
		if at.Value != nil {
			return false // constant-folded
		}
		return !isString(src) // []byte/[]rune/rune/int → string copies
	}
	if isByteOrRuneSlice(d) && isString(src) {
		return true // string → []byte/[]rune copies
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allocatingLit reports composite literals that always allocate: slice and
// map literals, and address-taken struct literals. Plain value struct
// literals usually stay on the stack and are not reported.
func allocatingLit(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
