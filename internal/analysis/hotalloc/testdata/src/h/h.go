// Package h exercises the hotalloc analyzer: per-row allocations inside
// the loops of //vec:hot functions.
package h

import (
	"fmt"
	"strconv"
)

func sink(v any) {}

func sinkBytes(b []byte) {}

//vec:hot
func badStrconv(xs []int64, out []string) {
	for i, x := range xs {
		out[i] = strconv.FormatInt(x, 10) // want `strconv.FormatInt allocates a string per iteration`
	}
}

//vec:hot
func badFmt(xs []int64, out []string) {
	for i, x := range xs {
		out[i] = fmt.Sprint(x) // want `fmt.Sprint allocates and reflects per iteration`
	}
}

//vec:hot
func badMake(xs []int64) {
	for range xs {
		_ = make([]byte, 8) // want `make allocates per iteration`
	}
}

//vec:hot
func badConvert(strs []string, out [][]byte) {
	for i, s := range strs {
		out[i] = []byte(s) // want `string conversion allocates per iteration`
	}
}

//vec:hot
func badBackConvert(bufs [][]byte, out []string) {
	for i, b := range bufs {
		out[i] = string(b) // want `string conversion allocates per iteration`
	}
}

//vec:hot
func badLiterals(xs []int64) {
	for _, x := range xs {
		_ = []int64{x}              // want `composite literal allocates per iteration`
		_ = map[int64]bool{x: true} // want `composite literal allocates per iteration`
	}
}

//vec:hot
func badBoxing(xs []int64) {
	for _, x := range xs {
		sink(x) // want `passing a concrete value to an interface parameter boxes it per iteration`
	}
}

// Kernels often run as closures under the morsel driver; the loop inside
// the literal is still the hot path.
//
//vec:hot
func badClosure(run func(func(lo, hi int)), xs []int64) {
	run(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = make([]byte, 8) // want `make allocates per iteration`
		}
	})
}

//vec:hot
func goodHoisted(xs []int64) {
	buf := make([]byte, 8)
	for range xs {
		sinkBytes(buf)
	}
}

//vec:hot
func goodValueStruct(xs []int64) {
	type pair struct{ a, b int64 }
	for _, x := range xs {
		_ = pair{a: x, b: x}
	}
}

//vec:hot
func goodNilInterface(xs []int64) {
	for range xs {
		sink(nil)
	}
}

//vec:hot
func deliberate(xs []int64) {
	for range xs {
		_ = make([]byte, 8) //hotalloc:ok scratch buffer, reset and reused via a pool
	}
}

// Not annotated: the same allocations are fine in a cold function.
func coldFunction(xs []int64, out []string) {
	for i, x := range xs {
		out[i] = strconv.FormatInt(x, 10)
	}
}
