package cfg

// Flow parameterizes one dataflow problem over a Graph. States are opaque
// to the solver; the client supplies the lattice operations. The solver is
// a standard iterative worklist: it converges when every block's input
// state stops changing, which requires Join/Transfer to be monotone over a
// lattice of finite height (all the monetlint clients use small finite
// bitmask or set states).
type Flow[S any] struct {
	// Init is the boundary state: the function-entry state for a forward
	// problem, the function-exit state for a backward one.
	Init func() S
	// Bottom is the identity of Join — the initial state of every
	// non-boundary block.
	Bottom func() S
	// Join combines the states of two incoming paths. It must not mutate
	// its arguments.
	Join func(a, b S) S
	// Equal reports state equality; the solver iterates until fixpoint.
	Equal func(a, b S) bool
	// Transfer computes the state after executing block b with input in.
	// It must not mutate in.
	Transfer func(b *Block, in S) S
	// TransferEdge, if non-nil, refines the state flowing along one edge
	// before it is joined into the target. For a forward problem from/to
	// follow control flow (to ∈ from.Succs, in the order the builder laid
	// them out: a two-way condition block's Succs[0] is the true edge).
	// Clients use it for branch-condition refinement, e.g. dropping the
	// "still nil" state on the true edge of a `v != nil` test.
	TransferEdge func(from, to *Block, out S) S
	// Backward flips the direction: states flow from Succs to Preds and
	// Transfer maps a block's out-state to its in-state.
	Backward bool
}

// Result holds the fixpoint states of one solved dataflow problem, keyed
// by block. For a forward problem In is the state on entry to the block
// and Out the state after its transfer; for a backward problem In is the
// state after the block (flowing in from successors) and Out the state
// before it.
type Result[S any] struct {
	In  map[*Block]S
	Out map[*Block]S
}

// Solve runs f over g to fixpoint and returns the per-block states.
func Solve[S any](g *Graph, f Flow[S]) Result[S] {
	in := make(map[*Block]S, len(g.Blocks))
	out := make(map[*Block]S, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = f.Bottom()
		out[b] = f.Bottom()
	}
	boundary := g.Entry
	if f.Backward {
		boundary = g.Exit
	}
	in[boundary] = f.Init()

	sources := func(b *Block) []*Block {
		if f.Backward {
			return b.Succs
		}
		return b.Preds
	}
	sinks := func(b *Block) []*Block {
		if f.Backward {
			return b.Preds
		}
		return b.Succs
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		state := in[b]
		if srcs := sources(b); len(srcs) > 0 {
			state = f.Bottom()
			for _, s := range srcs {
				o := out[s]
				if f.TransferEdge != nil {
					o = f.TransferEdge(s, b, o)
				}
				state = f.Join(state, o)
			}
			if b == boundary {
				state = f.Join(state, f.Init())
			}
			in[b] = state
		}
		next := f.Transfer(b, state)
		if f.Equal(next, out[b]) {
			continue
		}
		out[b] = next
		for _, s := range sinks(b) {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return Result[S]{In: in, Out: out}
}
