package cfg

import (
	"go/ast"
	"testing"
)

// The solver tests use a tiny "may reach marker assignment" analysis:
// state is a bitmask of which markers have definitely (must) or possibly
// (may) been assigned on the way to a block.

type bits uint32

func markersIn(b *Block) bits {
	var m bits
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || len(id.Name) != 2 || id.Name[0] != 'm' {
			continue
		}
		m |= 1 << (id.Name[1] - '0')
	}
	return m
}

func TestForwardMayAnalysis(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	m1 := 1
	_ = m1
	if c {
		m2 := 1
		_ = m2
	}
	m3 := 1
	_ = m3
}`, "f")
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return 0 },
		Join:     func(a, b bits) bits { return a | b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
	})
	exitIn := res.In[g.Exit]
	if exitIn&(1<<1) == 0 || exitIn&(1<<2) == 0 || exitIn&(1<<3) == 0 {
		t.Errorf("may-analysis at exit = %03b, want all three markers", exitIn)
	}
	// At the m3 block's entry, m2 is only a may-fact (one path skips it).
	m3blk := blockOf(g, "m3")
	if res.In[m3blk]&(1<<2) == 0 {
		t.Errorf("m2 should be a may-fact at m3")
	}
}

func TestForwardMustAnalysis(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	m1 := 1
	_ = m1
	if c {
		m2 := 1
		_ = m2
	}
	m3 := 1
	_ = m3
}`, "f")
	// must-analysis: intersection join. Bottom is "all markers" (the
	// identity of intersection); Init at entry is "none yet".
	const all = bits(0xFF)
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return all },
		Join:     func(a, b bits) bits { return a & b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
	})
	exitIn := res.In[g.Exit]
	if exitIn&(1<<1) == 0 || exitIn&(1<<3) == 0 {
		t.Errorf("m1/m3 must reach exit on all paths, got %03b", exitIn)
	}
	if exitIn&(1<<2) != 0 {
		t.Errorf("m2 is conditional; must-analysis should drop it, got %03b", exitIn)
	}
}

func TestLoopFixpoint(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		m1 := 1
		_ = m1
	}
	m2 := 1
	_ = m2
}`, "f")
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return 0 },
		Join:     func(a, b bits) bits { return a | b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
	})
	// m1 is a may-fact after the loop (n may be 0: not a must-fact).
	if res.In[g.Exit]&(1<<1) == 0 {
		t.Errorf("loop body marker should may-reach exit")
	}
	const all = bits(0xFF)
	must := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return all },
		Join:     func(a, b bits) bits { return a & b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
	})
	if must.In[g.Exit]&(1<<1) != 0 {
		t.Errorf("loop body marker must not be a must-fact at exit (zero-trip loop)")
	}
	if must.In[g.Exit]&(1<<2) == 0 {
		t.Errorf("post-loop marker must reach exit")
	}
}

func TestBackwardAnalysis(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	m1 := 1
	_ = m1
	if c {
		return
	}
	m2 := 1
	_ = m2
}`, "f")
	// Backward may-analysis: which markers can still execute after a
	// block? Flowing from Exit toward Entry.
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return 0 },
		Join:     func(a, b bits) bits { return a | b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
		Backward: true,
	})
	// From the entry block, both markers lie ahead.
	entryOut := res.Out[g.Entry]
	if entryOut&(1<<1) == 0 || entryOut&(1<<2) == 0 {
		t.Errorf("backward at entry = %03b, want both markers ahead", entryOut)
	}
	// From the m2 block, only m2 itself is ahead (m1 already ran).
	m2blk := blockOf(g, "m2")
	if res.Out[m2blk]&(1<<1) != 0 {
		t.Errorf("m1 should not be ahead of the m2 block")
	}
}

func TestUnreachableBlockStaysBottom(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	return
	m1 := 1
	_ = m1
}`, "f")
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return bits(1 << 7) },
		Bottom:   func() bits { return 0 },
		Join:     func(a, b bits) bits { return a | b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
	})
	dead := blockOf(g, "m1")
	if dead == nil {
		t.Fatal("no block for dead marker")
	}
	if res.In[dead]&(1<<7) != 0 {
		t.Errorf("entry fact leaked into an unreachable block")
	}
}

func TestTransferEdgeRefinement(t *testing.T) {
	// The entry block assigns m1 and ends in a two-way condition; the edge
	// refiner kills the m1 fact on the true edge only, the way poolescape
	// drops the "still held" state on the true edge of a nil check.
	g := buildFunc(t, `package p
func f(c bool) {
	m1 := 1
	_ = m1
	if c {
		m2 := 1
		_ = m2
	} else {
		m3 := 1
		_ = m3
	}
}`, "f")
	res := Solve(g, Flow[bits]{
		Init:     func() bits { return 0 },
		Bottom:   func() bits { return 0 },
		Join:     func(a, b bits) bits { return a | b },
		Equal:    func(a, b bits) bool { return a == b },
		Transfer: func(b *Block, in bits) bits { return in | markersIn(b) },
		TransferEdge: func(from, to *Block, out bits) bits {
			if len(from.Succs) == 2 && to == from.Succs[0] {
				return out &^ (1 << 1)
			}
			return out
		},
	})
	thenBlk := blockOf(g, "m2")
	elseBlk := blockOf(g, "m3")
	if thenBlk == nil || elseBlk == nil {
		t.Fatal("missing branch blocks")
	}
	if res.In[thenBlk]&(1<<1) != 0 {
		t.Errorf("edge refiner did not kill m1 on the true edge")
	}
	if res.In[elseBlk]&(1<<1) == 0 {
		t.Errorf("edge refiner killed m1 on the false edge too")
	}
	// Both branches rejoin: the exit sees m1 only via the else path.
	if res.In[g.Exit]&(1<<1) == 0 {
		t.Errorf("m1 should survive to exit via the false edge")
	}
}
