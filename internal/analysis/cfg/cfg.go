// Package cfg builds per-function control-flow graphs from go/ast and
// solves dataflow problems over them — the flow-sensitive substrate under
// the monetlint v2 analyzers (poolescape, goleak, interruptloop, errkind).
//
// The graph is intra-procedural and syntactic: one Graph per function body,
// basic blocks holding the statements and control expressions that execute
// together, edges following Go's structured control flow plus break/
// continue/goto/fallthrough. Terminating statements — return, panic, and a
// small set of process-exit calls — end their block: return edges to the
// function's single Exit block, panic and process exits leave no successor
// (they never reach the normal return path; deferred calls are modeled
// separately via Graph.Defers, which run on panic exits too).
//
// The shape mirrors golang.org/x/tools/go/cfg, narrowed to what the suite
// needs and extended with the defer list and reachability that the
// analyzers consume directly.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Block is one basic block: a maximal run of nodes with a single entry and
// a single exit point in the control flow.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the statements and control sub-expressions executed in
	// order when the block runs: plain statements, if/switch conditions,
	// range operands. They are ast.Node so analyzers can walk them
	// uniformly.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to after this one. A
	// terminating block (panic, process exit, or the Exit block itself)
	// has none.
	Succs []*Block
	// Preds are the blocks that may transfer control here.
	Preds []*Block
	// desc labels the block's role for Graph.String ("entry", "if.then",
	// "for.body", "exit", ...).
	desc string
}

// addNode appends a node to the block's executed sequence.
func (b *Block) addNode(n ast.Node) {
	if n != nil {
		b.Nodes = append(b.Nodes, n)
	}
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Fun is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fun ast.Node
	// Blocks holds every block, entry first. Exit is always present even
	// if unreachable (a function ending in an infinite loop or panic).
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single normal-return block: every return statement and
	// the fall-off-the-end path edge here. It holds no nodes.
	Exit *Block
	// Defers lists every defer statement in the body in syntactic order,
	// including those in nested blocks. Deferred calls run at every
	// function exit — normal and panicking — so analyzers treat them as a
	// separate, always-executed epilogue rather than as CFG nodes.
	Defers []*ast.DeferStmt
}

// CalleeOf resolves a call's callee object via info, or nil for calls
// through function values, built-ins, and conversions. It is the
// type-aware hook New uses to classify terminating calls.
type CalleeOf func(call *ast.CallExpr) *types.Func

// New builds the control-flow graph of body. calleeOf may be nil, in which
// case only the panic built-in terminates a block; with type information it
// also recognizes os.Exit, log.Fatal*, runtime.Goexit, and testing's
// FailNow/Fatal family as terminating.
func New(fun ast.Node, body *ast.BlockStmt, calleeOf CalleeOf) *Graph {
	g := &Graph{Fun: fun}
	b := &builder{g: g, calleeOf: calleeOf, labels: map[string]*labelBlocks{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.current = g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.jump(g.Exit)
	b.resolveGotos()
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// Inspect traverses the subtree of one block node the way a dataflow
// transfer function must see it: a *ast.RangeStmt node stands for its
// per-iteration key/value assignment only (the operand and body were
// decomposed into their own blocks by the builder), so descending into its
// body would double-count every statement of the loop. All other nodes are
// walked in full with ast.Inspect.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !f(n) {
			return
		}
		if rs.Key != nil {
			ast.Inspect(rs.Key, f)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, f)
		}
		return
	}
	ast.Inspect(n, f)
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// String renders the graph block by block for tests and debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", blk.Index, blk.desc)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// labelBlocks tracks the jump targets of one label.
type labelBlocks struct {
	breakTo    *Block // after the labeled loop/switch/select
	continueTo *Block // the labeled loop's post/condition block
	gotoTo     *Block // the labeled statement itself
}

type builder struct {
	g        *Graph
	calleeOf CalleeOf
	current  *Block

	// Innermost-first stacks of branch targets.
	breakStack    []*Block
	continueStack []*Block
	// Labels collect targets as labeled statements are built; gotos to
	// labels not yet seen are resolved at the end.
	labels        map[string]*labelBlocks
	pendingGotos  []pendingGoto
	fallthroughTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(desc string) *Block {
	blk := &Block{Index: len(b.g.Blocks), desc: desc}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge from the current block to dst (when both exist) and
// marks the current path dead; a nil dst terminates the path with no
// successor (panic, process exit, unresolvable branch).
func (b *builder) jump(dst *Block) {
	if b.current != nil && dst != nil {
		b.current.Succs = append(b.current.Succs, dst)
	}
	b.current = nil
}

// startBlock begins a new block and makes it current. If the previous
// block was still live, control falls through into the new one.
func (b *builder) startBlock(desc string) *Block {
	blk := b.newBlock(desc)
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, blk)
	}
	b.current = blk
	return blk
}

// ensureLive makes sure statements have a block to land in; statements
// after a terminator are unreachable but still get blocks (so analyzers
// can see them and reachability analysis can call them dead).
func (b *builder) ensureLive(desc string) {
	if b.current == nil {
		b.current = b.newBlock(desc)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	b.ensureLive("unreachable")
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.current.addNode(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.current.addNode(s.Cond)
		condBlk := b.current
		then := b.newBlock("if.then")
		condBlk.Succs = append(condBlk.Succs, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			condBlk.Succs = append(condBlk.Succs, els)
		}
		after := b.newBlock("if.after")
		if s.Else == nil {
			condBlk.Succs = append(condBlk.Succs, after)
		}
		b.current = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			b.current = els
			b.stmt(s.Else)
			b.jump(after)
		}
		b.current = after

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.current.addNode(s)

	case *ast.ExprStmt:
		b.current.addNode(s)
		if b.terminates(s.X) {
			b.jump(nil) // no successor: panic/exit never reaches Exit
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec, and
		// empty statements execute straight-line.
		b.current.addNode(s)
	}
}

// branch wires break/continue/goto/fallthrough to their targets; a branch
// whose target cannot be resolved terminates the path.
func (b *builder) branch(s *ast.BranchStmt) {
	b.current.addNode(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil && lb.breakTo != nil {
				b.jump(lb.breakTo)
				return
			}
		} else if n := len(b.breakStack); n > 0 {
			b.jump(b.breakStack[n-1])
			return
		}
		b.jump(nil)
	case token.CONTINUE:
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil && lb.continueTo != nil {
				b.jump(lb.continueTo)
				return
			}
		} else if n := len(b.continueStack); n > 0 {
			b.jump(b.continueStack[n-1])
			return
		}
		b.jump(nil)
	case token.GOTO:
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil && lb.gotoTo != nil {
				b.jump(lb.gotoTo)
				return
			}
			b.pendingGotos = append(b.pendingGotos, pendingGoto{b.current, s.Label.Name})
		}
		b.current = nil
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
		b.jump(nil)
	}
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock("for.head")
	if s.Cond != nil {
		head.addNode(s.Cond)
	}
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	head.Succs = append(head.Succs, body)
	if s.Cond != nil {
		head.Succs = append(head.Succs, after)
	}
	var post *Block
	contTo := head
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.addNode(s.Post)
		post.Succs = append(post.Succs, head)
		contTo = post
	}
	if label != "" {
		b.labels[label] = &labelBlocks{breakTo: after, continueTo: contTo}
	}
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, contTo)
	b.current = body
	b.stmtList(s.Body.List)
	b.jump(contTo)
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.current = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.current.addNode(s.X)
	head := b.startBlock("range.head")
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	head.Succs = append(head.Succs, body, after)
	if label != "" {
		b.labels[label] = &labelBlocks{breakTo: after, continueTo: head}
	}
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, head)
	b.current = body
	if s.Key != nil || s.Value != nil {
		// The per-iteration variable assignment is part of the body for
		// analysis purposes; represent it by the range statement itself.
		body.addNode(s)
	}
	b.stmtList(s.Body.List)
	b.jump(head)
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.current = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.current.addNode(s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, len(cc.List))
		for i, e := range cc.List {
			nodes[i] = e
		}
		return nodes
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.current.addNode(s.Assign)
	b.caseClauses(s.Body.List, label, func(*ast.CaseClause) []ast.Node { return nil })
}

// caseClauses builds the shared switch shape: the dispatch block edges to
// every case body (and to after, when there is no default), case bodies
// edge to after, fallthrough edges to the next case body.
func (b *builder) caseClauses(list []ast.Stmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	dispatch := b.current
	after := b.newBlock("switch.after")
	if label != "" {
		b.labels[label] = &labelBlocks{breakTo: after}
	}
	b.breakStack = append(b.breakStack, after)

	var bodies []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range list {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("case.body")
		for _, n := range caseNodes(cc) {
			dispatch.addNode(n)
		}
		dispatch.Succs = append(dispatch.Succs, blk)
		if cc.List == nil {
			hasDefault = true
		}
		bodies = append(bodies, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	for i, blk := range bodies {
		if i+1 < len(bodies) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.current = blk
		b.stmtList(clauses[i].Body)
		b.jump(after)
	}
	b.fallthroughTo = nil
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.current = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	dispatch := b.current
	after := b.newBlock("select.after")
	if label != "" {
		b.labels[label] = &labelBlocks{breakTo: after}
	}
	b.breakStack = append(b.breakStack, after)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.body")
		dispatch.Succs = append(dispatch.Succs, blk)
		b.current = blk
		if cc.Comm != nil {
			blk.addNode(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	// A select with no cases blocks forever; give it no out edge.
	if len(dispatch.Succs) == 0 {
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		b.current = after
		return
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.current = after
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		// Pre-register so `continue name` inside resolves; forStmt fills
		// the real targets.
		b.forStmt(inner, name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, name)
	case *ast.SelectStmt:
		b.selectStmt(inner, name)
	default:
		// A plain labeled statement: goto target.
		target := b.startBlock("label." + name)
		if lb := b.labels[name]; lb != nil {
			lb.gotoTo = target
		} else {
			b.labels[name] = &labelBlocks{gotoTo: target}
		}
		b.stmt(s.Stmt)
	}
}

func (b *builder) resolveGotos() {
	for _, pg := range b.pendingGotos {
		if lb := b.labels[pg.label]; lb != nil && lb.gotoTo != nil {
			pg.from.Succs = append(pg.from.Succs, lb.gotoTo)
		}
	}
	b.pendingGotos = nil
}

// terminates reports whether evaluating e never returns: a panic, a
// runtime.Goexit, an os.Exit, or a log.Fatal* call.
func (b *builder) terminates(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		// Without type info this may shadow a user function named panic;
		// acceptable for analysis purposes.
		return true
	}
	if b.calleeOf == nil {
		return false
	}
	fn := b.calleeOf(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic")
	}
	return false
}
