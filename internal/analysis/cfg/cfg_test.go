package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFunc parses src (a full file), finds the function named name, and
// builds its CFG with a CalleeOf that resolves selector calls to a fake
// package so terminating calls (os.Exit, log.Fatalf) are recognized
// without a real typechecker.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		return New(fd, fd.Body, fakeCallee)
	}
	t.Fatalf("no function %q in source", name)
	return nil
}

// fakeCallee maps pkg.Fn selector calls to a *types.Func in a synthetic
// package named pkg, enough for terminates() to classify them.
func fakeCallee(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkg := types.NewPackage(id.Name, id.Name)
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, sel.Sel.Name, sig)
}

// blockOf returns the block containing an assignment to an identifier
// named marker, or nil.
func blockOf(g *Graph, marker string) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == marker {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	return nil
}

func TestLinearFlow(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	a := 1
	b := a + 1
	_ = b
}`, "f")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3:\n%s", len(g.Entry.Nodes), g)
	}
	reach := g.Reachable()
	if !reach[g.Exit] {
		t.Errorf("exit unreachable in straight-line function:\n%s", g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	thenv := 0
	if c {
		thenv = 1
	} else {
		thenv = 2
	}
	after := thenv
	return after
}`, "f")
	after := blockOf(g, "after")
	if after == nil {
		t.Fatalf("no block for after:\n%s", g)
	}
	if len(after.Preds) != 2 {
		t.Errorf("join block has %d preds, want 2 (then+else):\n%s", len(after.Preds), g)
	}
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		body := i
		_ = body
	}
	after := 1
	_ = after
}`, "f")
	body := blockOf(g, "body")
	after := blockOf(g, "after")
	if body == nil || after == nil {
		t.Fatalf("missing body/after blocks:\n%s", g)
	}
	// The body must flow back around to itself (through post and head).
	reachFromBody := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reachFromBody[b] {
			return
		}
		reachFromBody[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(body)
	if !reachFromBody[body] || !reachFromBody[after] || !reachFromBody[g.Exit] {
		t.Errorf("loop body should reach itself, after, and exit:\n%s", g)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for {
		x := 1
		_ = x
	}
}`, "f")
	if g.Reachable()[g.Exit] {
		t.Errorf("exit reachable past for{}:\n%s", g)
	}
}

func TestBreakEscapesInfiniteLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	for {
		if c {
			break
		}
	}
	after := 1
	_ = after
}`, "f")
	if !g.Reachable()[g.Exit] {
		t.Errorf("break should make exit reachable:\n%s", g)
	}
}

func TestPanicOnlyExit(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	x := 1
	_ = x
	panic("boom")
}`, "f")
	if g.Reachable()[g.Exit] {
		t.Errorf("exit reachable in panic-only function:\n%s", g)
	}
	// The panicking block must have no successors.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(b.Succs) != 0 {
						t.Errorf("panic block has successors %v:\n%s", b.Succs, g)
					}
				}
			}
		}
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		os.Exit(1)
		dead := 1
		_ = dead
	}
	after := 1
	_ = after
}`, "f")
	dead := blockOf(g, "dead")
	if dead == nil {
		t.Fatalf("no block for dead:\n%s", g)
	}
	if g.Reachable()[dead] {
		t.Errorf("statements after os.Exit should be unreachable:\n%s", g)
	}
	if !g.Reachable()[blockOf(g, "after")] {
		t.Errorf("code after the if should stay reachable:\n%s", g)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	dead := 2
	_ = dead
}`, "f")
	dead := blockOf(g, "dead")
	if dead == nil {
		t.Fatalf("no block for dead code:\n%s", g)
	}
	if g.Reachable()[dead] {
		t.Errorf("code after return should be unreachable:\n%s", g)
	}
}

func TestDefersCollected(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	defer one()
	if c {
		defer two()
	}
	for i := 0; i < 3; i++ {
		defer three()
	}
}`, "f")
	if len(g.Defers) != 3 {
		t.Fatalf("collected %d defers, want 3", len(g.Defers))
	}
	names := make([]string, len(g.Defers))
	for i, d := range g.Defers {
		names[i] = d.Call.Fun.(*ast.Ident).Name
	}
	if got := strings.Join(names, ","); got != "one,two,three" {
		t.Errorf("defers in order %s, want one,two,three", got)
	}
}

func TestSwitchShape(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		one := 1
		_ = one
	case 2:
		two := 2
		_ = two
	default:
		dflt := 3
		_ = dflt
	}
	after := 4
	_ = after
}`, "f")
	after := blockOf(g, "after")
	if after == nil {
		t.Fatalf("no after block:\n%s", g)
	}
	if len(after.Preds) != 3 {
		t.Errorf("switch join has %d preds, want 3:\n%s", len(after.Preds), g)
	}
	for _, m := range []string{"one", "two", "dflt"} {
		if !g.Reachable()[blockOf(g, m)] {
			t.Errorf("case %s unreachable:\n%s", m, g)
		}
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		return
	}
	after := 1
	_ = after
}`, "f")
	if !g.Reachable()[blockOf(g, "after")] {
		t.Errorf("switch without default must edge to after:\n%s", g)
	}
}

func TestFallthroughEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		one := 1
		_ = one
		fallthrough
	case 2:
		two := 2
		_ = two
	}
}`, "f")
	one := blockOf(g, "one")
	two := blockOf(g, "two")
	if one == nil || two == nil {
		t.Fatalf("missing case blocks:\n%s", g)
	}
	found := false
	for _, s := range one.Succs {
		if s == two {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge from case 1 to case 2 missing:\n%s", g)
	}
}

func TestSelectBranches(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b chan int) {
	select {
	case <-a:
		ra := 1
		_ = ra
	case v := <-b:
		rb := v
		_ = rb
	}
	after := 1
	_ = after
}`, "f")
	for _, m := range []string{"ra", "rb", "after"} {
		if !g.Reachable()[blockOf(g, m)] {
			t.Errorf("%s unreachable:\n%s", m, g)
		}
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		body := x
		_ = body
	}
	after := 1
	_ = after
}`, "f")
	if !g.Reachable()[blockOf(g, "body")] || !g.Reachable()[blockOf(g, "after")] {
		t.Errorf("range blocks unreachable:\n%s", g)
	}
	// Empty range: after must be reachable without passing through body.
	after := blockOf(g, "after")
	hasNonBodyPred := false
	for _, p := range after.Preds {
		if p != blockOf(g, "body") {
			hasNonBodyPred = true
		}
	}
	if !hasNonBodyPred {
		t.Errorf("range must be skippable when empty:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			inner := j
			_ = inner
		}
	}
	after := 1
	_ = after
}`, "f")
	if !g.Reachable()[blockOf(g, "after")] || !g.Reachable()[blockOf(g, "inner")] {
		t.Errorf("labeled loop blocks unreachable:\n%s", g)
	}
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		goto done
	}
	skipped := 1
	_ = skipped
done:
	after := 2
	_ = after
}`, "f")
	if !g.Reachable()[blockOf(g, "after")] || !g.Reachable()[blockOf(g, "skipped")] {
		t.Errorf("goto blocks unreachable:\n%s", g)
	}
}

func TestGotoBackwardLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
top:
	body := 1
	_ = body
	if c {
		goto top
	}
}`, "f")
	body := blockOf(g, "body")
	if body == nil {
		t.Fatalf("no body block:\n%s", g)
	}
	// The goto must create a cycle back to the labeled block.
	seen := map[*Block]bool{}
	var cyclic func(b *Block) bool
	cyclic = func(b *Block) bool {
		if b == body {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if cyclic(s) {
				return true
			}
		}
		return false
	}
	inCycle := false
	for _, s := range body.Succs {
		if cyclic(s) {
			inCycle = true
		}
	}
	if !inCycle {
		t.Errorf("backward goto did not form a cycle:\n%s", g)
	}
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable:\n%s", g)
	}
}

func TestPredsConsistent(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool, xs []int) {
	if c {
		for _, x := range xs {
			_ = x
		}
	}
	switch {
	case c:
		return
	default:
	}
}`, "f")
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("b%d -> b%d edge missing from preds:\n%s", b.Index, s.Index, g)
			}
		}
	}
}

func TestInspectRangeBodyVisitedOnce(t *testing.T) {
	// The builder places the whole *ast.RangeStmt node in the range.body
	// block to stand for the per-iteration key/value assignment. A naive
	// ast.Inspect over every block node therefore walks the loop body
	// twice — once under the RangeStmt, once under the body's own
	// statements. Inspect must visit it exactly once.
	g := buildFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		sink := x
		_ = sink
	}
}`, "f")
	count := func(walk func(ast.Node, func(ast.Node) bool)) int {
		n := 0
		for _, b := range g.Blocks {
			for _, node := range b.Nodes {
				walk(node, func(x ast.Node) bool {
					if id, ok := x.(*ast.Ident); ok && id.Name == "sink" {
						n++
					}
					return true
				})
			}
		}
		return n
	}
	// sink appears twice in source (decl + use); the naive walk doubles it.
	if got := count(ast.Inspect); got != 4 {
		t.Errorf("naive ast.Inspect visited sink %d times, want 4 (the double-count this test guards against)", got)
	}
	if got := count(Inspect); got != 2 {
		t.Errorf("cfg.Inspect visited sink %d times, want exactly 2", got)
	}
	// The key/value operands still get visited via the RangeStmt node.
	seenVal := 0
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if _, ok := node.(*ast.RangeStmt); !ok {
				continue
			}
			Inspect(node, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == "x" {
					seenVal++
				}
				return true
			})
		}
	}
	if seenVal != 1 {
		t.Errorf("range value ident visited %d times via the RangeStmt node, want 1", seenVal)
	}
}
