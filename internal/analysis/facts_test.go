package analysis

import (
	"encoding/gob"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	N int
	S string
}

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

// typecheck parses and typechecks src as package path, returning a Pass
// wired to the given store.
func typecheckPass(t *testing.T, path, src string, store *FactStore) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{
		Analyzer:  &Analyzer{Name: "testan"},
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     store,
	}
}

func lookupObj(t *testing.T, p *Pass, name string) types.Object {
	t.Helper()
	obj := p.Pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("no object %q in %s", name, p.Pkg.Path())
	}
	return obj
}

func TestObjectKeyForms(t *testing.T) {
	p := typecheckPass(t, "example.com/k", `package k

func Top() {}

type T struct{}

func (T) Val() {}
func (*T) Ptr() {}

var V int
`, nil)
	cases := map[string]string{
		"Top": "example.com/k.Top",
		"V":   "example.com/k.V",
	}
	for name, want := range cases {
		got, ok := ObjectKey(lookupObj(t, p, name))
		if !ok || got != want {
			t.Errorf("ObjectKey(%s) = %q, %v; want %q", name, got, ok, want)
		}
	}
	tObj := lookupObj(t, p, "T").Type().(*types.Named)
	for i := 0; i < tObj.NumMethods(); i++ {
		m := tObj.Method(i)
		got, ok := ObjectKey(m)
		if !ok {
			t.Errorf("ObjectKey(%s) not ok", m.Name())
			continue
		}
		want := map[string]string{
			"Val": "example.com/k.(T).Val",
			"Ptr": "example.com/k.(*T).Ptr",
		}[m.Name()]
		if got != want {
			t.Errorf("ObjectKey(%s) = %q, want %q", m.Name(), got, want)
		}
	}
}

func TestObjectKeyRejectsLocals(t *testing.T) {
	p := typecheckPass(t, "example.com/loc", `package loc

func F() {
	x := 1
	_ = x
}
`, nil)
	var local types.Object
	for _, obj := range p.TypesInfo.Defs {
		if obj != nil && obj.Name() == "x" {
			local = obj
		}
	}
	if local == nil {
		t.Fatal("local x not found")
	}
	if key, ok := ObjectKey(local); ok {
		t.Errorf("ObjectKey(local x) = %q, want not-ok", key)
	}
}

func TestObjectFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	p := typecheckPass(t, "example.com/rt", `package rt

func Exported() {}
`, store)
	obj := lookupObj(t, p, "Exported")
	p.ExportObjectFact(obj, &testFact{N: 7, S: "seven"})

	var got testFact
	if !p.ImportObjectFact(obj, &got) {
		t.Fatal("fact not found after export")
	}
	if got.N != 7 || got.S != "seven" {
		t.Errorf("fact = %+v, want {7 seven}", got)
	}

	// A different analyzer name must not see the fact.
	other := *p
	other.Analyzer = &Analyzer{Name: "otheran"}
	var miss testFact
	if other.ImportObjectFact(obj, &miss) {
		t.Error("fact leaked across analyzer names")
	}
}

func TestPackageFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	p := typecheckPass(t, "example.com/pf", `package pf
`, store)
	p.ExportPackageFact(&testFact{N: 3})
	var got testFact
	if !p.ImportPackageFact(p.Pkg, &got) || got.N != 3 {
		t.Errorf("package fact = %+v, %v", got, got.N == 3)
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	p := typecheckPass(t, "example.com/nil", `package nilpkg

func F() {}
`, nil)
	obj := lookupObj(t, p, "F")
	p.ExportObjectFact(obj, &testFact{N: 1}) // must not panic
	var got testFact
	if p.ImportObjectFact(obj, &got) {
		t.Error("import from nil store succeeded")
	}
}

func TestEncodeDecodeMerge(t *testing.T) {
	store := NewFactStore()
	p := typecheckPass(t, "example.com/enc", `package enc

func A() {}
func B() {}
`, store)
	p.ExportObjectFact(lookupObj(t, p, "A"), &testFact{N: 1, S: "a"})
	p.ExportObjectFact(lookupObj(t, p, "B"), &testFact{N: 2, S: "b"})
	p.ExportPackageFact(&testFact{N: 9})

	data, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic output: encoding twice yields identical bytes.
	data2, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("Encode is not deterministic")
	}

	fresh := NewFactStore()
	if err := fresh.Decode(data); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != store.Len() {
		t.Errorf("decoded %d facts, want %d", fresh.Len(), store.Len())
	}
	p2 := *p
	p2.Facts = fresh
	var got testFact
	if !p2.ImportObjectFact(lookupObj(t, p, "B"), &got) || got.S != "b" {
		t.Errorf("decoded fact for B = %+v", got)
	}
	if !p2.ImportPackageFact(p.Pkg, &got) || got.N != 9 {
		t.Errorf("decoded package fact = %+v", got)
	}

	// Decoding empty input is a no-op, not an error.
	if err := fresh.Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v", err)
	}
}
