package colinvariant_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/colinvariant"
)

func TestColinvariant(t *testing.T) {
	analysistest.Run(t, "testdata", colinvariant.Analyzer, "b", "k/internal/engine/vec")
}
