// Package b sits outside the allowed literal zones: storage.Column must be
// built through constructors here.
package b

import "repro/internal/storage"

func badValue() storage.Column {
	return storage.Column{Name: "x"} // want `storage.Column composite literal outside internal/storage and the vec kernels`
}

func badPointer() *storage.Column {
	return &storage.Column{Name: "y"} // want `storage.Column composite literal outside internal/storage and the vec kernels`
}

func goodConstructor() *storage.Column {
	return storage.NewColumn("z", 0, 16)
}

func deliberate() *storage.Column {
	c := storage.Column{Name: "seed"} //colinvariant:ok hand-built column for the dump golden files
	return &c
}

func otherLiteral() storage.Type {
	var t storage.Type
	return t
}
