// Package storage stubs repro/internal/storage for the colinvariant
// fixtures: the analyzer matches Column by name and path suffix.
package storage

// Type is a stub column type tag.
type Type int

// Column mirrors the real layout closely enough for the fixtures.
type Column struct {
	Name  string
	Typ   Type
	Ints  []int64
	Flts  []float64
	Strs  []string
	Nulls []uint64
}

// NewColumn is the constructor the analyzer steers callers toward.
func NewColumn(name string, t Type, n int) *Column {
	return &Column{Name: name, Typ: t}
}
