// Package vec exercises the kernel-zone rule: a function storing a non-nil
// Nulls bitmap must zero the value slots under the set bits.
package vec

import "repro/internal/storage"

func zeroUnderNulls(vals []int64, nulls []uint64) {
	for i := range vals {
		if nulls[i/64]>>(uint(i)%64)&1 == 1 {
			vals[i] = 0
		}
	}
}

func badAssign(out *storage.Column, nulls []uint64) {
	out.Nulls = nulls // want `badAssign sets a Nulls bitmap without zeroing value slots`
}

func badLiteral(nulls []uint64) storage.Column {
	return storage.Column{Nulls: nulls} // want `badLiteral sets a Nulls bitmap without zeroing value slots`
}

func goodZeroed(out *storage.Column, nulls []uint64) {
	out.Nulls = nulls
	zeroUnderNulls(out.Ints, nulls)
}

//colinvariant:zeroed the caller hands over pre-zeroed buffers
func annotated(out *storage.Column, nulls []uint64) {
	out.Nulls = nulls
}

func nilStore(out *storage.Column) {
	out.Nulls = nil
}

// Composite literals are allowed inside the kernel zone; without a Nulls
// store there is nothing to check.
func literalAllowedHere() storage.Column {
	return storage.Column{Name: "tmp"}
}
