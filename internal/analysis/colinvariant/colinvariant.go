// Package colinvariant defines an analyzer guarding the two structural
// invariants of storage.Column established in PRs 1 and 4:
//
//  1. Outside internal/storage, internal/engine/vec, and _test.go files,
//     Column values must be built through constructors (storage.NewColumn,
//     storage.BindValue) — a composite literal elsewhere bypasses the
//     type/buffer consistency the constructors maintain.
//  2. Inside kernel packages (internal/engine/vec), a function that stores
//     a non-nil Nulls bitmap into a Column must also zero the value slots
//     under the set bits (call zeroUnderNulls) or be annotated
//     //colinvariant:zeroed — the zero-copy GO-UDF contract: user code
//     receives the raw slices, and garbage under NULL bits leaks values
//     across rows.
package colinvariant

import (
	"go/ast"

	"repro/internal/analysis"
)

// allowedLiteralZones are package path segments where Column composite
// literals are legitimate: the defining package and the vector kernels.
var allowedLiteralZones = []string{"internal/storage", "internal/engine/vec"}

// kernelZones are package path segments where the zero-under-NULL rule
// applies.
var kernelZones = []string{"internal/engine/vec"}

// Analyzer is the colinvariant check.
var Analyzer = &analysis.Analyzer{
	Name: "colinvariant",
	Doc: `enforce storage.Column construction and zero-under-NULL invariants

Composite literals of storage.Column outside internal/storage,
internal/engine/vec, and _test.go files must use the constructors. In vec
kernels, storing a non-nil Nulls bitmap requires zeroing the value slots
under set bits (zeroUnderNulls) or the //colinvariant:zeroed annotation.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	literalsAllowed := inZones(pass, allowedLiteralZones)
	if !literalsAllowed {
		checkLiterals(pass)
	}
	if inZones(pass, kernelZones) {
		checkKernels(pass)
	}
	return nil
}

func inZones(pass *analysis.Pass, zones []string) bool {
	for _, z := range zones {
		if analysis.PathHasSegments(pass.Pkg.Path(), z) {
			return true
		}
	}
	return false
}

// checkLiterals reports storage.Column composite literals outside the
// allowed zones.
func checkLiterals(pass *analysis.Pass) {
	pass.Preorder(func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || pass.InTestFile(n.Pos()) {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || !analysis.NamedFrom(tv.Type, "internal/storage", "Column") {
			return true
		}
		if pass.HasDirective(lit, "colinvariant", "ok") {
			return true
		}
		pass.Reportf(lit.Pos(), "storage.Column composite literal outside internal/storage and the vec kernels; use storage.NewColumn/storage.BindValue so buffers stay consistent (or annotate //colinvariant:ok)")
		return true
	})
}

// checkKernels enforces the zero-under-NULL rule per function.
func checkKernels(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkKernelFunc(pass, fd)
		}
	}
}

func checkKernelFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var stores []ast.Node
	zeroes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callsZeroHelper(pass, n) {
				zeroes = true
			}
		case *ast.KeyValueExpr:
			// Column{..., Nulls: expr} with a non-nil expr.
			key, ok := n.Key.(*ast.Ident)
			if !ok || key.Name != "Nulls" || isNil(n.Value) {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[key]; ok && obj.Pkg() != nil &&
				analysis.PathHasSegments(obj.Pkg().Path(), "internal/storage") {
				stores = append(stores, n)
			}
		case *ast.AssignStmt:
			// col.Nulls = expr with a non-nil expr.
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Nulls" {
					continue
				}
				if i < len(n.Rhs) && isNil(n.Rhs[i]) {
					continue
				}
				tv, ok := pass.TypesInfo.Types[sel.X]
				if ok && analysis.NamedFrom(tv.Type, "internal/storage", "Column") {
					stores = append(stores, sel)
				}
			}
		}
		return true
	})
	if len(stores) == 0 || zeroes {
		return
	}
	for _, d := range pass.FuncDirectives(fd.Body.Pos(), "colinvariant") {
		if d.Verb == "zeroed" {
			return
		}
	}
	for _, s := range stores {
		pass.Reportf(s.Pos(), "%s sets a Nulls bitmap without zeroing value slots under the set bits; call zeroUnderNulls (zero-copy GO-UDF contract) or annotate the function //colinvariant:zeroed", fd.Name.Name)
	}
}

// callsZeroHelper recognizes calls to the canonical zeroing helper.
func callsZeroHelper(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "zeroUnderNulls"
	case *ast.IndexExpr: // explicit instantiation zeroUnderNulls[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "zeroUnderNulls"
		}
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
