package analysistest

import (
	"go/ast"
	"testing"

	"repro/internal/analysis"
)

// boomAnalyzer reports every call of a function literally named "boom".
var boomAnalyzer = &analysis.Analyzer{
	Name: "boomcheck",
	Doc:  "report calls to boom",
	Run: func(pass *analysis.Pass) error {
		pass.Preorder(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
				pass.Reportf(call.Pos(), "boom call")
			}
			return true
		})
		return nil
	},
}

func TestRunSmoke(t *testing.T) {
	Run(t, "testdata", boomAnalyzer, "t1")
}

func TestParseWant(t *testing.T) {
	cases := []struct {
		text    string
		want    []string
		wantErr bool
	}{
		{text: "// a regular comment"},
		{text: "//wireswitch:ignore a directive is not a want"},
		{text: `// want "one"`, want: []string{"one"}},
		{text: "// want `back quoted`", want: []string{"back quoted"}},
		{text: `// want "one" "two"`, want: []string{"one", "two"}},
		{text: `//want "tight"`, want: []string{"tight"}},
		{text: `// want 123`, wantErr: true},
		{text: `// want`},
		{text: `// want `}, // trailing space trims away: prose, not a want
		{text: `// want ;`, wantErr: true},
	}
	for _, c := range cases {
		got, err := parseWant(c.text)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseWant(%q): expected error, got %v", c.text, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWant(%q): %v", c.text, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseWant(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseWant(%q)[%d] = %q, want %q", c.text, i, got[i], c.want[i])
			}
		}
	}
}
