// Package t1 is the smoke fixture for the analysistest harness itself.
package t1

func boom() {}

func use() {
	boom() // want "boom call"
	ok()
}

func ok() {}
