// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want "regex" comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented over the
// stdlib-only loader. Fixtures live in GOPATH-style trees:
//
//	testdata/src/<importpath>/*.go
//
// A fixture line expecting a diagnostic carries a trailing comment:
//
//	ch <- v // want "channel send while holding"
//
// Multiple expectations may follow one want; each is a quoted or
// backquoted Go string holding a regexp. Diagnostics and expectations must
// match one-to-one per line.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads each fixture package under testdata/src, applies a, and
// reports mismatches between diagnostics and want comments through t.
//
// If a declares FactTypes, it first runs silently over the fixture
// package's own fixture-tree imports (dependencies first), sharing one
// fact store — so a fixture can import a helper package and exercise
// cross-package facts exactly as the drivers produce them.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := load.New(load.Config{SrcDirs: []string{filepath.Join(testdata, "src")}})
	analysis.RegisterFactTypes([]*analysis.Analyzer{a})
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			pkg, err := loader.LoadPath(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			facts := analysis.NewFactStore()
			if len(a.FactTypes) > 0 {
				for _, dep := range fixtureDeps(loader, pkg) {
					if dep == pkg {
						continue
					}
					runOn(t, loader.Fset(), a, dep, facts, nil)
				}
			}
			var diags []analysis.Diagnostic
			runOn(t, loader.Fset(), a, pkg, facts, func(d analysis.Diagnostic) { diags = append(diags, d) })
			check(t, loader.Fset(), pkg, diags)
		})
	}
}

// runOn applies a to one package. A nil report discards diagnostics (the
// facts-only pass over dependencies).
func runOn(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *load.Package, facts *analysis.FactStore, report func(analysis.Diagnostic)) {
	t.Helper()
	if report == nil {
		report = func(analysis.Diagnostic) {}
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    report,
		Facts:     facts,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %s: %v", a.Name, pkg.Path, err)
	}
}

// fixtureDeps returns pkg and its loader-cached (fixture-tree) imports,
// dependencies first.
func fixtureDeps(loader *load.Loader, pkg *load.Package) []*load.Package {
	var order []*load.Package
	seen := map[string]bool{}
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if p == nil || seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, imp := range p.Types.Imports() {
			visit(loader.Cached(imp.Path()))
		}
		order = append(order, p)
	}
	visit(pkg)
	return order
}

type key struct {
	file string
	line int
}

// check matches diagnostics against want expectations.
func check(t *testing.T, fset *token.FileSet, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", fset.Position(c.Pos()), err)
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", fset.Position(c.Pos()), err)
					}
					k := key{filename, fset.Position(c.Pos()).Line}
					wants[k] = append(wants[k], rx)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var leftover []string
	for k, rxs := range wants {
		for _, rx := range rxs {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, rx))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("%s", l)
	}
}

// parseWant extracts the expectation regexps from one comment's text, or
// nil if it is not a want comment.
func parseWant(text string) ([]string, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "want ")
	if !ok {
		return nil, nil
	}
	var out []string
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", -1, len(rest))
	sc.Init(file, []byte(rest), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("want expectation must be a string literal, got %s", tok)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want literal %s: %w", lit, err)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no expectations")
	}
	return out, nil
}
