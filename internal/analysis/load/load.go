// Package load type-checks packages from source using only the standard
// library: module-local import paths resolve to directories under the
// module root, fixture roots (GOPATH-style src trees) shadow everything,
// and the standard library is delegated to the compiler's source importer.
// It is the package loader behind `monetlint ./...` and the analysistest
// harness; under `go vet -vettool` the cheaper export-data path in
// cmd/monetlint is used instead.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config parameterizes a Loader.
type Config struct {
	// Fset receives all parsed file positions.
	Fset *token.FileSet
	// ModulePath/ModuleDir map module-local import paths to directories
	// (e.g. "repro" → the repo root). Empty ModulePath disables this.
	ModulePath string
	ModuleDir  string
	// SrcDirs are GOPATH-style roots (dir/<importpath>/*.go) searched
	// before the module mapping; analysistest points one at testdata/src.
	SrcDirs []string
}

// Package is one type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and memoizes packages. It implements types.ImporterFrom.
type Loader struct {
	cfg     Config
	ctxt    build.Context
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a Loader for cfg.
func New(cfg Config) *Loader {
	if cfg.Fset == nil {
		cfg.Fset = token.NewFileSet()
	}
	// The source importer resolves through the global build context; force
	// cgo off there too so stdlib packages with cgo variants (net, os/user)
	// typecheck via their pure-Go fallbacks without needing a C compiler.
	build.Default.CgoEnabled = false
	ctxt := build.Default
	return &Loader{
		cfg:     cfg,
		ctxt:    ctxt,
		std:     importer.ForCompiler(cfg.Fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.cfg.Fset }

// dirFor resolves an import path to a source directory, if the path is one
// this loader owns (fixture roots first, then the module mapping).
func (l *Loader) dirFor(path string) (string, bool) {
	for _, sd := range l.cfg.SrcDirs {
		dir := filepath.Join(sd, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	if mp := l.cfg.ModulePath; mp != "" && (path == mp || strings.HasPrefix(path, mp+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, mp), "/")
		return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rel)), true
	}
	return "", false
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func hasNonTestGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at dir under import path path.
func (l *Loader) Load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.cfg.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.cfg.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: %w (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Cached returns the already-loaded package for an import path, or nil.
// Packages this loader typechecked from source (module packages, fixture
// packages) are cached; standard-library imports are not — which makes
// Cached the "is this one of ours" test the fact-aware drivers use to
// order analysis by dependency.
func (l *Loader) Cached(path string) *Package { return l.pkgs[path] }

// LoadPath loads the package for an import path resolvable by this loader.
func (l *Loader) LoadPath(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve %q to a source directory", path)
	}
	return l.Load(path, dir)
}

// ModulePackages walks the module tree and returns the import paths of all
// packages containing buildable Go files, skipping testdata, vendor, and
// hidden directories — the expansion of the "./..." pattern.
func (l *Loader) ModulePackages() ([]string, error) {
	if l.cfg.ModulePath == "" {
		return nil, fmt.Errorf("loader has no module configured")
	}
	var paths []string
	root := l.cfg.ModuleDir
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasNonTestGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := l.cfg.ModulePath
		if rel != "." {
			ip += "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
