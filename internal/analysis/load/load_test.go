package load_test

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

func fixtureLoader() *load.Loader {
	return load.New(load.Config{SrcDirs: []string{filepath.Join("testdata", "src")}})
}

func TestLoadPathFixture(t *testing.T) {
	l := fixtureLoader()
	pkg, err := l.LoadPath("m1")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "m1" || pkg.Types.Name() != "m1" {
		t.Errorf("loaded %q (package %s)", pkg.Path, pkg.Types.Name())
	}
	if len(pkg.Files) != 1 {
		t.Errorf("expected 1 file, got %d", len(pkg.Files))
	}
	if pkg.Info == nil || len(pkg.Info.Defs) == 0 {
		t.Errorf("type info was not collected")
	}
	// The fixture dependency and the stdlib import both resolved.
	var upperCalls int
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
				if obj.Pkg().Path() == "strings" || obj.Pkg().Path() == "m2" {
					upperCalls++
				}
			}
		}
		return true
	})
	if upperCalls != 2 {
		t.Errorf("resolved %d of 2 cross-package callees", upperCalls)
	}

	again, err := l.LoadPath("m1")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Errorf("second LoadPath did not hit the memo")
	}
}

func TestLoadPathUnknown(t *testing.T) {
	if _, err := fixtureLoader().LoadPath("does/not/exist"); err == nil {
		t.Fatal("expected an error for an unresolvable path")
	}
}

func TestImportCycle(t *testing.T) {
	_, err := fixtureLoader().LoadPath("c1")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("expected an import cycle error, got %v", err)
	}
}

func TestTypeError(t *testing.T) {
	if _, err := fixtureLoader().LoadPath("badtype"); err == nil {
		t.Fatal("expected a typecheck error")
	}
}

func TestImportUnsafe(t *testing.T) {
	pkg, err := fixtureLoader().ImportFrom("unsafe", "", 0)
	if err != nil || pkg != types.Unsafe {
		t.Fatalf("ImportFrom(unsafe) = %v, %v", pkg, err)
	}
}

func TestModulePackages(t *testing.T) {
	l := load.New(load.Config{
		ModulePath: "mod",
		ModuleDir:  filepath.Join("testdata", "mod"),
	})
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mod", "mod/sub"}
	if len(paths) != len(want) || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("ModulePackages = %v, want %v (testdata and test-only dirs skipped)", paths, want)
	}
	pkg, err := l.LoadPath("mod/sub")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "sub" {
		t.Errorf("loaded package %q", pkg.Types.Name())
	}
}

func TestModulePackagesWithoutModule(t *testing.T) {
	if _, err := fixtureLoader().ModulePackages(); err == nil {
		t.Fatal("expected an error when no module is configured")
	}
}

func TestNewInfo(t *testing.T) {
	info := load.NewInfo()
	if info.Types == nil || info.Defs == nil || info.Uses == nil ||
		info.Implicits == nil || info.Selections == nil || info.Scopes == nil || info.Instances == nil {
		t.Fatal("NewInfo left a map nil")
	}
}
