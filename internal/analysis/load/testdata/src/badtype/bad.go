// Package badtype fails to typecheck.
package badtype

// Broken assigns a string to an int.
var Broken int = "not an int"
