// Package m1 exercises fixture-to-fixture and stdlib imports.
package m1

import (
	"strings"

	"m2"
)

// Upper combines a fixture dependency with a stdlib call.
func Upper() string {
	return strings.ToUpper(m2.Greeting())
}
