// Package m2 is the dependency of m1.
package m2

// Greeting returns a constant.
func Greeting() string { return "hi" }
