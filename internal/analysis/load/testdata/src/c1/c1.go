// Package c1 imports c2, which imports c1 back: an import cycle.
package c1

import "c2"

// V re-exports the cycle partner's value.
var V = c2.V
