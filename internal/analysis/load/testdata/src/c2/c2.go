// Package c2 completes the import cycle with c1.
package c2

import "c1"

// V re-exports the cycle partner's value.
var V = c1.V
