// Package skipme must be skipped by the testdata rule.
package skipme
