// Package sub is a nested package of the synthetic module.
package sub
