// Package onlytest has no non-test files and is not a buildable package.
package onlytest
