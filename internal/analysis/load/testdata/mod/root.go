// Package mod is the synthetic module root for ModulePackages tests.
package mod
