package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a cross-package datum an analyzer attaches to a package or to an
// exported package-level object (function, method, var, type) so that
// analysis of downstream packages can consult it — the mechanism behind
// "this engine function can return a KindCancelled error" reaching the
// wire package's errkind pass. Concrete fact types must be gob-encodable
// pointers (the vet-tool driver serializes them into the .vetx facts file
// the go command threads between compilation units) and must implement the
// marker method.
//
// This mirrors golang.org/x/tools/go/analysis.Fact, narrowed to
// package-level objects: facts on locals are not addressable across
// packages and are rejected by ExportObjectFact.
type Fact interface {
	AFact() // marker method
}

// FactStore accumulates facts across the packages of one analysis run.
// The standalone driver shares one store over all packages (analyzed in
// dependency order); the vet-tool driver fills it from the .vetx files of
// the unit's imports and serializes it back out for dependents. Safe for
// concurrent use.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// factKey addresses one fact: the analyzer that produced it and the
// package or object it is attached to.
type factKey struct {
	analyzer string
	object   string // "" for a package fact
	pkg      string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[factKey]Fact)}
}

// ObjectKey renders a stable cross-package name for a package-level object:
// "path.Name" for plain objects, "path.(T).Name" / "path.(*T).Name" for
// methods. It returns ok=false for objects that are not addressable across
// packages (locals, receivers, interface methods of unnamed types).
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			rt := recv.Type()
			ptr := ""
			if p, isPtr := rt.(*types.Pointer); isPtr {
				rt = p.Elem()
				ptr = "*"
			}
			named, isNamed := rt.(*types.Named)
			if !isNamed {
				return "", false
			}
			return obj.Pkg().Path() + ".(" + ptr + named.Obj().Name() + ")." + name, true
		}
	}
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", false // local object
	}
	return obj.Pkg().Path() + "." + name, true
}

// ExportObjectFact records fact for obj. Facts on objects that are not
// package-level (no stable cross-package name) are dropped silently — they
// could never be imported anyway.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	p.Facts.put(factKey{p.Analyzer.Name, key, obj.Pkg().Path()}, fact)
}

// ImportObjectFact copies the fact recorded for obj by this analyzer into
// *fact and reports whether one existed. fact must be a pointer of the
// same concrete type that was exported.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.Facts.get(factKey{p.Analyzer.Name, key, obj.Pkg().Path()}, fact)
}

// ExportPackageFact records fact for the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Facts == nil || p.Pkg == nil {
		return
	}
	p.Facts.put(factKey{p.Analyzer.Name, "", p.Pkg.Path()}, fact)
}

// ImportPackageFact copies the fact recorded for pkg by this analyzer into
// *fact and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.get(factKey{p.Analyzer.Name, "", pkg.Path()}, fact)
}

func (s *FactStore) put(k factKey, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.facts == nil {
		s.facts = make(map[factKey]Fact)
	}
	s.facts[k] = fact
}

// get copies the stored fact into dst (a pointer to the same concrete
// type) via reflection.
func (s *FactStore) get(k factKey, dst Fact) bool {
	s.mu.Lock()
	stored, ok := s.facts[k]
	s.mu.Unlock()
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(stored)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// savedFact is the serialized form of one fact in a .vetx file.
type savedFact struct {
	Analyzer string
	Object   string // "" for a package fact
	Pkg      string
	Fact     Fact
}

// RegisterFactTypes registers the concrete fact types of the analyzers
// with gob, so Encode/Decode can round-trip them. Call once per process
// before Encode or Decode.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// Encode serializes every fact in the store — those imported from
// dependencies included, so facts propagate transitively through the vet
// units of intermediate packages.
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	saved := make([]savedFact, 0, len(s.facts))
	for k, f := range s.facts {
		saved = append(saved, savedFact{k.analyzer, k.object, k.pkg, f})
	}
	s.mu.Unlock()
	sort.Slice(saved, func(i, j int) bool {
		a, b := saved[i], saved[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Object < b.Object
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(saved); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a serialized facts file into the store. Unknown fact
// types (an analyzer was removed or renamed) fail the decode; the driver
// treats that as a stale facts file.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var saved []savedFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&saved); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.facts == nil {
		s.facts = make(map[factKey]Fact)
	}
	for _, sf := range saved {
		s.facts[factKey{sf.Analyzer, sf.Object, sf.Pkg}] = sf.Fact
	}
	return nil
}

// Len reports the number of facts in the store (for tests and -timing
// diagnostics).
func (s *FactStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}
