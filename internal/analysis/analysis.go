// Package analysis is a small, dependency-free analog of the
// golang.org/x/tools/go/analysis model: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repro module is deliberately dependency-free, so instead of importing
// x/tools this package reimplements the narrow slice of its API the
// monetlint suite needs (see cmd/monetlint). Analyzers written against it
// keep the familiar shape — Name/Doc/Run(*Pass) — which keeps a future
// migration to the real framework mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the vet-style identifier, e.g. "wireswitch".
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
	// FactTypes lists the concrete types of the facts this analyzer
	// exports, one zero value per type (pointers). An analyzer with fact
	// types runs over dependency packages too — silently, diagnostics
	// discarded — so its facts are available when dependents are checked.
	FactTypes []Fact
}

// Diagnostic is one finding, positioned within pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Facts is the cross-package fact store of this run; nil when the
	// driver does not support facts (Export/Import become no-ops).
	Facts *FactStore

	directives map[*ast.File]map[int][]Directive
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder walks every file of the package in depth-first order.
func (p *Pass) Preorder(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ForEachFunc visits every function body in the package — declarations
// and function literals — skipping test files. Literals nested inside a
// declaration are visited after it. This is the shared entry point of the
// function-at-a-time analyzers (lockblock, poolescape, goleak, ...): fn
// receives the enclosing *ast.FuncDecl (nil for a literal not inside one)
// and the body.
func (p *Pass) ForEachFunc(fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || p.InTestFile(fd.Pos()) {
				continue
			}
			fn(fd, nil, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(fd, lit, lit.Body)
				}
				return true
			})
		}
		// Literals in package-level variable initializers.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || p.InTestFile(gd.Pos()) {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					fn(nil, lit, lit.Body)
				}
				return true
			})
		}
	}
}

// FileOf returns the *ast.File whose range contains pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The monetlint
// analyzers enforce production invariants; test files are exempt.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PathHasSegments reports whether want ("internal/wire") occurs in path
// ("repro/internal/wire") as a run of complete, consecutive slash-separated
// segments. Analyzers scope themselves with segment suffixes rather than
// exact import paths so that analysistest fixtures (loaded under synthetic
// roots like "a/internal/wire") scope identically to the real packages.
func PathHasSegments(path, want string) bool {
	ps := strings.Split(path, "/")
	ws := strings.Split(want, "/")
	for i := 0; i+len(ws) <= len(ps); i++ {
		match := true
		for j := range ws {
			if ps[i+j] != ws[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// NamedFrom reports whether t (or the pointee, if t is a pointer) is a
// defined type with the given name whose package path ends in the given
// segments.
func NamedFrom(t types.Type, pathSegments, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSegments(obj.Pkg().Path(), pathSegments)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

// CalleeFunc resolves the called function or method of call, or nil for
// calls through function-typed variables, built-ins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.TypesInfo.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = p.TypesInfo.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}
