package interruptloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/interruptloop"
)

func TestInterruptloop(t *testing.T) {
	analysistest.Run(t, "testdata", interruptloop.Analyzer, "k/internal/engine/stage")
}
