// Package stage exercises the interruptloop analyzer.
package stage

import (
	"context"

	"k/internal/engine"
	"k/internal/engine/vec"
)

func work() {}

var hooks []func()

// --- findings ---

func pump(c *engine.Conn) {
	for { // want "unconditioned loop never reaches an interrupt checkpoint"
		work()
	}
}

func drain(ctx context.Context, ch chan int) {
	for v := range ch { // want "loop ranges over a channel without an interrupt checkpoint"
		_ = v
	}
}

func runHooks(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "loop makes a dynamic call, which may run unbounded work"
		hooks[i]()
	}
}

// engine.Eval carries a Long fact from its defining package.
func evalAll(c *engine.Conn, n int) {
	for i := 0; i < n; i++ { // want "loop calls Eval, which may run unbounded work"
		engine.Eval(nil)
	}
}

//vec:hot
func scaleBad(p *vec.Pol, d []float64, f float64) {
	for i := range d { // want "//vec:hot kernel with a morsel pool runs outside the pool's Run drivers"
		d[i] *= f
	}
}

// --- clean ---

// Checkpointed through the cross-package Checkpoints fact on engine.Tick.
func pumpOK(c *engine.Conn) error {
	for {
		if err := engine.Tick(c); err != nil {
			return err
		}
		work()
	}
}

func drainOK(ctx context.Context, ch chan int) error {
	for v := range ch {
		if err := ctx.Err(); err != nil {
			return err
		}
		_ = v
	}
	return nil
}

func selectLoop(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
		}
	}
}

// The Stop hook on the pool is a checkpoint.
func hooksOK(p *vec.Pol, n int) {
	for i := 0; i < n; i++ {
		if p.Stop != nil && p.Stop() {
			return
		}
		hooks[0]()
	}
}

//vec:hot
func scaleOK(p *vec.Pol, d []float64, f float64) {
	p.Run(len(d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] *= f
		}
	})
}

// Static in-package calls in a bounded loop are fine without a checkpoint.
func staticOK(c *engine.Conn, n int) {
	for i := 0; i < n; i++ {
		work()
	}
}

// The escape hatch needs a reason and silences the finding.
func spinExempt(c *engine.Conn) {
	//interruptloop:exempt spins at most 3 times before the budget trips
	for {
		work()
	}
}
