// Package vec mirrors the engine's morsel pool for the fixtures.
package vec

// Pol is a morsel-parallel execution policy.
type Pol struct {
	Workers    int
	MorselSize int
	Stop       func() bool
}

// Run drives fn over [0,n) in morsels, checkpointing Stop between them.
func (p *Pol) Run(n int, fn func(lo, hi int)) {
	for lo := 0; lo < n; lo += p.MorselSize {
		if p.Stop != nil && p.Stop() {
			return
		}
		hi := lo + p.MorselSize
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// RunIdx is Run with per-index granularity.
func (p *Pol) RunIdx(n int, fn func(i int)) {
	p.Run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// RunErr is Run with error short-circuiting.
func (p *Pol) RunErr(n int, fn func(lo, hi int) error) error {
	var err error
	p.Run(n, func(lo, hi int) {
		if err == nil {
			err = fn(lo, hi)
		}
	})
	return err
}
