// Package engine mirrors the engine's interrupt surface for the fixtures.
package engine

import "errors"

var errStopped = errors.New("interrupted")

// Conn is a client connection holding the interrupt hook.
type Conn struct {
	stop func() bool
}

func (c *Conn) interruptErr() error {
	if c.stop != nil && c.stop() {
		return errStopped
	}
	return nil
}

// Tick polls the connection's interrupt state; callers looping over work
// use it as their checkpoint, so it earns a Checkpoints fact.
func Tick(c *Conn) error {
	return c.interruptErr()
}

// Eval runs one dynamic op per element with no checkpoint of its own, so
// it earns a Long fact: callers must checkpoint between Eval calls.
func Eval(ops []func()) {
	for _, op := range ops {
		op()
	}
}
