// Package interruptloop defines an analyzer requiring potentially long
// loops in the engine's execution paths to reach an interrupt checkpoint.
//
// The paper's serving model admits queries whose result sets and kernel
// inputs are sized by the client; a loop that processes them without ever
// consulting the connection's interrupt state (or a morsel pool's Stop
// hook, or a context) turns client cancellation and admission-control
// revocation into dead letters. The analyzer flags, inside
// interrupt-capable functions of the engine packages:
//
//   - unconditioned `for {}` loops and loops ranging over a channel;
//   - loops whose body makes a dynamic (interface or function-value) call
//     or calls a function carrying a Long fact, i.e. per-iteration work of
//     unbounded cost;
//   - any loop in a //vec:hot kernel that takes a morsel pool parameter
//     but runs outside the pool's Run/RunIdx/RunErr drivers (which
//     checkpoint between morsels).
//
// A loop already containing a checkpoint — an interruptErr/stopped/
// checkBudgetRows call, a Stop-hook call, ctx.Err, a channel receive or
// select, a morsel-driver call, or a call to a function with a
// Checkpoints fact — is accepted. Loops bounded by construction are
// exempted with //interruptloop:exempt <reason>.
package interruptloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the interruptloop check.
var Analyzer = &analysis.Analyzer{
	Name: "interruptloop",
	Doc: `require long-running engine loops to reach an interrupt checkpoint

Inside interrupt-capable functions (methods on the engine Conn, functions
taking a morsel Pol or a context.Context) of the engine and devudf
packages, unbounded loops and loops doing dynamic-call work must contain a
cancellation checkpoint. Exempt provably short loops with
//interruptloop:exempt <reason>.`,
	Run:       run,
	FactTypes: []analysis.Fact{(*Checkpoints)(nil), (*Long)(nil)},
}

// Checkpoints is a fact on a function: every call to it observes the
// interrupt state, so a loop calling it is checkpointed.
type Checkpoints struct{}

// AFact marks Checkpoints as a fact type.
func (*Checkpoints) AFact() {}

// Long is a fact on a function: one call may run work of unbounded cost
// (it loops over dynamic calls without checkpointing), so callers looping
// over it must checkpoint between calls.
type Long struct{}

// AFact marks Long as a fact type.
func (*Long) AFact() {}

// scopes lists the package path segments whose loops are checked. Other
// packages still contribute facts.
var scopes = []string{"engine", "devudf"}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, local: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.local[fn] = fd
				}
			}
		}
	}

	// Fixpoint over the package's functions: a function checkpoints if its
	// body contains a checkpoint op, possibly a call to another local
	// checkpointing function.
	c.checkpoints = map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range c.local {
			if c.checkpoints[fn] {
				continue
			}
			if c.containsCheckpoint(fd.Body) {
				c.checkpoints[fn] = true
				changed = true
			}
		}
	}
	for fn := range c.checkpoints {
		pass.ExportObjectFact(fn, &Checkpoints{})
	}
	// Long facts are computed after checkpoint facts so a loop calling a
	// local checkpointing helper is not itself long.
	for fn, fd := range c.local {
		if c.checkpoints[fn] {
			continue
		}
		if c.hasUncheckedDynamicLoop(fd.Body) {
			pass.ExportObjectFact(fn, &Long{})
			c.long = append(c.long, fn)
		}
	}

	inScope := false
	for _, s := range scopes {
		if analysis.PathHasSegments(pass.Pkg.Path(), s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}

	pass.ForEachFunc(func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		if lit != nil {
			return // literals are visited as part of their enclosing function
		}
		c.checkFunc(decl)
	})
	return nil
}

type checker struct {
	pass        *analysis.Pass
	local       map[*types.Func]*ast.FuncDecl
	checkpoints map[*types.Func]bool
	long        []*types.Func
	driverLits  []*ast.FuncLit // literals passed to Pol Run drivers, per checked function
}

// capable reports whether fd can observe an interrupt at all: a method on
// the engine Conn, or a function taking a morsel Pol, a context.Context,
// or an engine Interrupt. Functions without any of these have nothing to
// poll, so their loops are a plumbing problem, not a checkpoint problem.
func (c *checker) capable(fd *ast.FuncDecl) bool {
	capableType := func(t types.Type) bool {
		return analysis.NamedFrom(t, "engine", "Conn") ||
			analysis.NamedFrom(t, "vec", "Pol") ||
			analysis.NamedFrom(t, "context", "Context") ||
			analysis.NamedFrom(t, "engine", "Interrupt")
	}
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && capableType(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if capableType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// hasPolParam reports whether fd takes a morsel pool parameter.
func (c *checker) hasPolParam(fd *ast.FuncDecl) bool {
	fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.NamedFrom(sig.Params().At(i).Type(), "vec", "Pol") {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if !c.capable(fd) {
		return
	}
	hot := false
	for _, d := range c.pass.FuncDirectives(fd.Pos(), "vec") {
		if d.Verb == "hot" {
			hot = true
		}
	}
	hotPol := hot && c.hasPolParam(fd)

	c.driverLits = c.driverLits[:0]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isMorselDriverCall(call) {
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					c.driverLits = append(c.driverLits, lit)
				}
			}
		}
		return true
	})

	// Walk loops outermost-first; a loop that checkpoints clears its whole
	// subtree (the checkpoint is reached on every iteration of any nesting).
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			// A literal passed to a morsel driver runs checkpointed between
			// morsels; other literals are checked in their own right only
			// for the unbounded-shape triggers below, via the same walk.
			return true
		default:
			return true
		}
		if c.containsCheckpoint(body) {
			return false
		}
		if reason, ok := c.exempted(n); ok {
			_ = reason
			return false
		}
		if msg := c.trigger(n, body, hotPol); msg != "" {
			c.pass.Reportf(n.Pos(), "%s (add an interrupt checkpoint or annotate //interruptloop:exempt <reason>)", msg)
			return false
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// exempted reports whether a reasoned //interruptloop:exempt directive is
// attached to the loop or its enclosing function.
func (c *checker) exempted(n ast.Node) (string, bool) {
	for _, d := range c.pass.Attached(n, "interruptloop") {
		if d.Verb == "exempt" && d.Args != "" {
			return d.Args, true
		}
	}
	for _, d := range c.pass.FuncDirectives(n.Pos(), "interruptloop") {
		if d.Verb == "exempt" && d.Args != "" {
			return d.Args, true
		}
	}
	return "", false
}

// trigger classifies a non-checkpointing loop; an empty string means the
// loop is accepted.
func (c *checker) trigger(loop ast.Node, body *ast.BlockStmt, hotPol bool) string {
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond == nil {
			return "unconditioned loop never reaches an interrupt checkpoint"
		}
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[l.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "loop ranges over a channel without an interrupt checkpoint"
			}
		}
	}
	if hotPol && !c.insideMorselDriver(loop) {
		return "loop in a //vec:hot kernel with a morsel pool runs outside the pool's Run drivers and never reaches an interrupt checkpoint"
	}
	if call := c.unboundedCall(body); call != nil {
		fn := c.pass.CalleeFunc(call)
		if fn != nil {
			return "loop calls " + fn.Name() + ", which may run unbounded work, without an interrupt checkpoint"
		}
		return "loop makes a dynamic call, which may run unbounded work, without an interrupt checkpoint"
	}
	return ""
}

// insideMorselDriver reports whether the loop sits inside a function
// literal passed to a Pol Run/RunIdx/RunErr call — i.e. the morsel driver
// checkpoints around it. driverLits is precomputed per checked function.
func (c *checker) insideMorselDriver(loop ast.Node) bool {
	for _, lit := range c.driverLits {
		if lit.Body.Pos() <= loop.Pos() && loop.End() <= lit.Body.End() {
			return true
		}
	}
	return false
}

// isMorselDriverCall matches p.Run / p.RunIdx / p.RunErr on a vec.Pol.
func (c *checker) isMorselDriverCall(call *ast.CallExpr) bool {
	fn := c.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "Run", "RunIdx", "RunErr":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.NamedFrom(sig.Recv().Type(), "vec", "Pol")
}

// containsCheckpoint reports whether body reaches an interrupt checkpoint.
// Function-literal bodies are included: a closure argument runs within the
// iteration, so a checkpoint inside it still fires per iteration (morsel
// driver calls are additionally matched as calls themselves).
func (c *checker) containsCheckpoint(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if c.isCheckpointCall(n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCheckpointCall matches the checkpoint vocabulary: the engine's
// interrupt probes, a Stop hook, ctx.Err, a morsel driver, or a function
// carrying a Checkpoints fact.
func (c *checker) isCheckpointCall(call *ast.CallExpr) bool {
	if c.isMorselDriverCall(call) {
		return true
	}
	// Stop hook: calling a func-typed field or variable named Stop.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
		if obj := c.pass.TypesInfo.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // field or variable of function type
			}
		}
	}
	fn := c.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "interruptErr", "stopped", "checkBudgetRows", "Stop":
		return true
	case "Err":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			analysis.NamedFrom(sig.Recv().Type(), "context", "Context") {
			return true
		}
	}
	if c.checkpoints[fn] {
		return true
	}
	var fact Checkpoints
	return c.pass.ImportObjectFact(fn, &fact)
}

// unboundedCall returns the first call in body whose per-iteration cost is
// unbounded: a dynamic call (interface method or function value) or a call
// to a function with a Long fact. Checkpoint calls are never unbounded.
func (c *checker) unboundedCall(body ast.Node) *ast.CallExpr {
	var hit *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isCheckpointCall(call) {
			return true
		}
		fn := c.pass.CalleeFunc(call)
		if fn == nil {
			// Conversion or builtin calls are cheap; a true dynamic call
			// through a function value is the unbounded case.
			if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			hit = call
			return false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				hit = call
				return false
			}
		}
		if fd, ok := c.local[fn]; ok {
			_ = fd
			for _, lf := range c.long {
				if lf == fn {
					hit = call
					return false
				}
			}
			return true
		}
		var fact Long
		if c.pass.ImportObjectFact(fn, &fact) {
			hit = call
			return false
		}
		return true
	})
	return hit
}

// hasUncheckedDynamicLoop reports whether body contains a loop doing
// dynamic-call work with no checkpoint — the shape that makes a function
// Long for its callers.
func (c *checker) hasUncheckedDynamicLoop(body *ast.BlockStmt) bool {
	long := false
	ast.Inspect(body, func(n ast.Node) bool {
		if long {
			return false
		}
		var lb *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			lb = l.Body
		case *ast.RangeStmt:
			lb = l.Body
		default:
			return true
		}
		if !c.containsCheckpoint(lb) && c.unboundedCall(lb) != nil {
			long = true
			return false
		}
		return true
	})
	return long
}
