package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one `//tool:verb args` comment, the suppression/annotation
// mechanism of the monetlint suite (mirroring `//go:build`-style tool
// directives). Examples:
//
//	//ctxflow:edge
//	//wireswitch:dispatch client-to-server
//	//wireswitch:ignore MsgAuth -- handled during the handshake
//	//lockblock:ok write lock intentionally serializes frame writes
//
// Everything after the verb is Args; by convention a human reason follows
// "--" or just trails the verb.
type Directive struct {
	Tool string
	Verb string
	Args string
	Pos  token.Pos
}

// parseDirective parses a single comment into a Directive. A directive
// comment is a //-comment with no space after the slashes, a lowercase
// tool name, a colon, and a verb.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//") || strings.HasPrefix(text, "// ") {
		return Directive{}, false
	}
	body := text[2:]
	colon := strings.IndexByte(body, ':')
	if colon <= 0 {
		return Directive{}, false
	}
	tool := body[:colon]
	for _, r := range tool {
		if r < 'a' || r > 'z' {
			return Directive{}, false
		}
	}
	rest := body[colon+1:]
	verb, args, _ := strings.Cut(rest, " ")
	if verb == "" {
		return Directive{}, false
	}
	return Directive{Tool: tool, Verb: verb, Args: strings.TrimSpace(args), Pos: c.Slash}, true
}

// fileDirectives lazily indexes a file's directives by line number.
func (p *Pass) fileDirectives(f *ast.File) map[int][]Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]Directive)
	}
	if byLine, ok := p.directives[f]; ok {
		return byLine
	}
	byLine := make(map[int][]Directive)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				line := p.Fset.Position(c.Slash).Line
				byLine[line] = append(byLine[line], d)
			}
		}
	}
	p.directives[f] = byLine
	return byLine
}

// Attached returns the directives for tool attached to node n: on the same
// line as n, or in the contiguous block of directive lines immediately
// above it (so several directives can stack over one statement).
func (p *Pass) Attached(n ast.Node, tool string) []Directive {
	f := p.FileOf(n.Pos())
	if f == nil {
		return nil
	}
	byLine := p.fileDirectives(f)
	line := p.Fset.Position(n.Pos()).Line
	var out []Directive
	for l := line - 1; l > 0 && len(byLine[l]) > 0; l-- {
		for _, d := range byLine[l] {
			if d.Tool == tool {
				out = append(out, d)
			}
		}
	}
	for _, d := range byLine[line] {
		if d.Tool == tool {
			out = append(out, d)
		}
	}
	return out
}

// Within returns the directives for tool positioned inside n's source range
// (e.g. comments between the cases of a switch statement).
func (p *Pass) Within(n ast.Node, tool string) []Directive {
	f := p.FileOf(n.Pos())
	if f == nil {
		return nil
	}
	var out []Directive
	for _, ds := range p.fileDirectives(f) {
		for _, d := range ds {
			if d.Tool == tool && n.Pos() <= d.Pos && d.Pos < n.End() {
				out = append(out, d)
			}
		}
	}
	return out
}

// FuncDirectives returns directives for tool in the doc comment of the
// function declaration enclosing pos, plus those attached to the
// declaration line itself.
func (p *Pass) FuncDirectives(pos token.Pos, tool string) []Directive {
	f := p.FileOf(pos)
	if f == nil {
		return nil
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		// A directive line directly above the declaration is both part of
		// fd.Doc and attached to fd's line; dedupe by position.
		var out []Directive
		seen := map[token.Pos]bool{}
		add := func(ds ...Directive) {
			for _, d := range ds {
				if !seen[d.Pos] {
					seen[d.Pos] = true
					out = append(out, d)
				}
			}
		}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if d, ok := parseDirective(c); ok && d.Tool == tool {
					add(d)
				}
			}
		}
		add(p.Attached(fd, tool)...)
		return out
	}
	return nil
}

// HasDirective reports whether node n carries tool:verb — attached to its
// line or declared on its enclosing function.
func (p *Pass) HasDirective(n ast.Node, tool, verb string) bool {
	for _, d := range p.Attached(n, tool) {
		if d.Verb == verb {
			return true
		}
	}
	for _, d := range p.FuncDirectives(n.Pos(), tool) {
		if d.Verb == verb {
			return true
		}
	}
	return false
}
