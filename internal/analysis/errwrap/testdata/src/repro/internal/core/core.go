// Package core stubs repro/internal/core for the errwrap fixtures: the
// analyzer matches it by path suffix, so only the signatures matter.
package core

import "fmt"

// ErrorKind mirrors the real kind enum.
type ErrorKind int

// KindIO is an arbitrary kind for the fixtures.
const KindIO ErrorKind = 1

// Errorf formats a kinded error; it cannot carry a cause.
func Errorf(kind ErrorKind, format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// Wrapf formats a kinded error around a cause.
func Wrapf(kind ErrorKind, cause error, format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
