// Package a exercises the errwrap analyzer.
package a

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

var errBoom = errors.New("boom")

func badVerbV() error {
	return fmt.Errorf("open config: %v", errBoom) // want `fmt.Errorf formats an error with %v, breaking the error chain`
}

func badVerbS(name string) error {
	return fmt.Errorf("load %s: %s", name, errBoom) // want `fmt.Errorf formats an error with %s, breaking the error chain`
}

func goodWrap() error {
	return fmt.Errorf("open config: %w", errBoom)
}

func goodNoError(n int) error {
	return fmt.Errorf("bad row count: %d", n)
}

// Percent escapes must not shift verb/operand matching: the first operand
// is the int, the second is the error.
func badAfterEscape(n int) error {
	return fmt.Errorf("100%% failure after %d rows: %v", n, errBoom) // want `fmt.Errorf formats an error with %v`
}

// A non-constant format string is out of scope.
func dynamicFormat(format string) error {
	return fmt.Errorf(format, errBoom)
}

// A deliberate chain-break carries the escape directive.
func deliberate() error {
	return fmt.Errorf("redacted: %v", errBoom) //errwrap:ok message is user-facing; the cause must not leak
}

func badCoreErrorf(addr string) error {
	return core.Errorf(core.KindIO, "connect %s: %v", addr, errBoom) // want `core.Errorf drops the error cause; use core.Wrapf`
}

func goodCoreWrapf(addr string) error {
	return core.Wrapf(core.KindIO, errBoom, "connect %s: %v", addr, errBoom)
}

func goodCoreNoError(addr string) error {
	return core.Errorf(core.KindIO, "connect %s: refused", addr)
}

func deliberateCore() error {
	return core.Errorf(core.KindIO, "summary only: %v", errBoom) //errwrap:ok kind-only error is intentional here
}
