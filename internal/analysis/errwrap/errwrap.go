// Package errwrap defines an analyzer enforcing that error causes survive
// wrapping: fmt.Errorf must format error operands with %w, and core.Errorf
// (which cannot carry a cause) must not be fed an error at all — those
// sites want core.Wrapf, whose Err field keeps errors.Is/As working across
// the wire/engine boundary.
package errwrap

import (
	"go/ast"
	"go/constant"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: `report error operands that lose their cause when wrapped

fmt.Errorf("...: %v", err) renders the error into the message and severs
the chain; use %w. core.Errorf(kind, "...: %v", err) has no way to retain
the cause; use core.Wrapf(kind, err, ...). Suppress a deliberate
chain-break with //errwrap:ok.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.InTestFile(n.Pos()) {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Name() != "Errorf" {
			return true
		}
		switch {
		case fn.Pkg().Path() == "fmt":
			checkFmtErrorf(pass, call)
		case analysis.PathHasSegments(fn.Pkg().Path(), "internal/core"):
			checkCoreErrorf(pass, call)
		}
		return true
	})
	return nil
}

// checkFmtErrorf matches format verbs to operands and reports error-typed
// operands formatted with anything but %w.
func checkFmtErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := constString(pass, call.Args[0])
	if !ok || strings.Contains(format, "%[") {
		return // dynamic or indexed format: out of scope
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) || verbs[i] == 'w' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !analysis.IsErrorType(tv.Type) {
			continue
		}
		if pass.HasDirective(call, "errwrap", "ok") {
			continue
		}
		pass.Reportf(arg.Pos(), "fmt.Errorf formats an error with %%%c, breaking the error chain; use %%w (or annotate //errwrap:ok)", verbs[i])
	}
}

// checkCoreErrorf reports error-typed operands of core.Errorf, which drops
// the cause regardless of verb.
func checkCoreErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 3 {
		return
	}
	for _, arg := range call.Args[2:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !analysis.IsErrorType(tv.Type) {
			continue
		}
		if pass.HasDirective(call, "errwrap", "ok") {
			continue
		}
		pass.Reportf(arg.Pos(), "core.Errorf drops the error cause; use core.Wrapf(kind, err, ...) so errors.Is/As keep working (or annotate //errwrap:ok)")
	}
}

// constString evaluates e as a constant string.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consumed by each successive operand
// of a printf-style format string. Width/precision stars are counted as
// operands with verb '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
