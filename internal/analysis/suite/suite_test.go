package suite_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/suite"
)

func TestAnalyzers(t *testing.T) {
	as := suite.Analyzers()
	if len(as) != 10 {
		t.Fatalf("expected 10 analyzers, got %d", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ContainsAny(a.Name, " \t\n") {
			t.Errorf("analyzer name %q is not a flat identifier", a.Name)
		}
	}
	for _, want := range []string{
		"colinvariant", "ctxflow", "errkind", "errwrap", "goleak",
		"hotalloc", "interruptloop", "lockblock", "poolescape", "wireswitch",
	} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if a := suite.ByName("errwrap"); a == nil || a.Name != "errwrap" {
		t.Fatalf("ByName(errwrap) = %v", a)
	}
	if a := suite.ByName("nope"); a != nil {
		t.Fatalf("ByName(nope) = %v, want nil", a)
	}
}
