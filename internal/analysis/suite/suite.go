// Package suite enumerates the monetlint analyzers in the order they run.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/colinvariant"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockblock"
	"repro/internal/analysis/wireswitch"
)

// Analyzers returns the full monetlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		colinvariant.Analyzer,
		ctxflow.Analyzer,
		errwrap.Analyzer,
		hotalloc.Analyzer,
		lockblock.Analyzer,
		wireswitch.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
