// Package suite enumerates the monetlint analyzers in the order they run.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/colinvariant"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/errkind"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/interruptloop"
	"repro/internal/analysis/lockblock"
	"repro/internal/analysis/poolescape"
	"repro/internal/analysis/wireswitch"
)

// Analyzers returns the full monetlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		colinvariant.Analyzer,
		ctxflow.Analyzer,
		errkind.Analyzer,
		errwrap.Analyzer,
		goleak.Analyzer,
		hotalloc.Analyzer,
		interruptloop.Analyzer,
		lockblock.Analyzer,
		poolescape.Analyzer,
		wireswitch.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
