// Benchmark harness: one testing.B benchmark per experiment in the
// DESIGN.md §5 index (T1, E1–E7), plus microbenchmarks of the substrates.
// cmd/experiments prints the same rows as a human-readable report;
// EXPERIMENTS.md records paper-vs-measured for each artefact.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/devudf"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/script"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transfer"
	"repro/internal/wal"
	"repro/monetlite"
)

// ctx is the background context the benches pass to the v2 session API.
var ctx = context.Background()

// ---- T1: Table 1 ----

// BenchmarkTable1 regenerates the paper's only table (static data; the
// bench exists so every artefact has a `-bench` entry point).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		for _, r := range bench.Table1 {
			fmt.Fprintf(&sb, "%-22s %5.1f%% %s\n", r.Name, r.Share, r.Kind)
		}
		ide, editor := bench.IDEShare()
		if ide < editor {
			b.Fatal("Table 1 must show IDEs dominating")
		}
	}
}

// ---- fixtures ----

func startNumbers(b *testing.B, rows int) (*bench.Fixture, func()) {
	b.Helper()
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		bench.NumbersInsert("numbers", rows),
		bench.MeanDeviationBuggy,
	)
	if err != nil {
		b.Fatal(err)
	}
	return fx, func() { fx.Close() }
}

func fixtureClient(b *testing.B, fx *bench.Fixture, opts devudf.TransferOptions) *devudf.Client {
	b.Helper()
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT mean_deviation(i) FROM numbers`
	settings.Transfer = opts
	c, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.ImportUDFs(ctx, "mean_deviation"); err != nil {
		b.Fatal(err)
	}
	return c
}

// ---- E1: compression ----

func BenchmarkExtractCompression(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		for _, compress := range []bool{false, true} {
			name := fmt.Sprintf("rows=%d/compress=%v", rows, compress)
			b.Run(name, func(b *testing.B) {
				fx, done := startNumbers(b, rows)
				defer done()
				c := fixtureClient(b, fx, devudf.TransferOptions{Compress: compress})
				defer c.Close()
				b.ResetTimer()
				var payload int
				for i := 0; i < b.N; i++ {
					info, err := c.ExtractInputs(ctx, "mean_deviation")
					if err != nil {
						b.Fatal(err)
					}
					payload = info.PayloadBytes
				}
				b.ReportMetric(float64(payload), "payloadB")
			})
		}
	}
}

// ---- E2: sampling ----

func BenchmarkExtractSampling(b *testing.B) {
	const rows = 100_000
	for _, sample := range []int{0, rows / 2, rows / 10, rows / 100} {
		name := "sample=all"
		if sample > 0 {
			name = fmt.Sprintf("sample=%d", sample)
		}
		b.Run(name, func(b *testing.B) {
			fx, done := startNumbers(b, rows)
			defer done()
			c := fixtureClient(b, fx, devudf.TransferOptions{SampleSize: sample, Seed: 42})
			defer c.Close()
			b.ResetTimer()
			var payload int
			for i := 0; i < b.N; i++ {
				info, err := c.ExtractInputs(ctx, "mean_deviation")
				if err != nil {
					b.Fatal(err)
				}
				payload = info.PayloadBytes
			}
			b.ReportMetric(float64(payload), "payloadB")
		})
	}
}

// ---- E3: encryption ----

func BenchmarkExtractEncryption(b *testing.B) {
	const rows = 100_000
	for _, encrypt := range []bool{false, true} {
		b.Run(fmt.Sprintf("encrypt=%v", encrypt), func(b *testing.B) {
			fx, done := startNumbers(b, rows)
			defer done()
			c := fixtureClient(b, fx, devudf.TransferOptions{Encrypt: encrypt, Seed: 1})
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.ExtractInputs(ctx, "mean_deviation"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E4: debug-cycle cost ----

// BenchmarkDebugCycleTraditional measures one traditional probe:
// CREATE OR REPLACE on the server + full remote query.
func BenchmarkDebugCycleTraditional(b *testing.B) {
	fx, done := startNumbers(b, 50_000)
	defer done()
	c := fixtureClient(b, fx, devudf.TransferOptions{})
	defer c.Close()
	info, _, err := c.Project.LoadUDF("mean_deviation")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TraditionalCycle(ctx, info, bench.MeanDeviationFixedBody); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDebugCycleDevUDF measures one devUDF probe after the one-time
// extract: edit the body + run locally on the full extracted input.
func BenchmarkDebugCycleDevUDF(b *testing.B) {
	fx, done := startNumbers(b, 50_000)
	defer done()
	c := fixtureClient(b, fx, devudf.TransferOptions{})
	defer c.Close()
	if _, err := c.ExtractInputs(ctx, "mean_deviation"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EditBody("mean_deviation", bench.MeanDeviationFixedBody); err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunLocal(ctx, "mean_deviation"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDebugCycleDevUDFSampled is the same probe on a 1% uniform
// sample — the §2.1 option — which is where the devUDF loop wins big.
func BenchmarkDebugCycleDevUDFSampled(b *testing.B) {
	fx, done := startNumbers(b, 50_000)
	defer done()
	c := fixtureClient(b, fx, devudf.TransferOptions{SampleSize: 500, Seed: 42})
	defer c.Close()
	if _, err := c.ExtractInputs(ctx, "mean_deviation"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EditBody("mean_deviation", bench.MeanDeviationFixedBody); err != nil {
			b.Fatal(err)
		}
		if _, err := c.RunLocal(ctx, "mean_deviation"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E5: processing models ----

// BenchmarkProcessingModel compares the three UDF execution shapes on the
// same 100k-row scalar computation: §2.4's tuple-at-a-time loop (one
// interpreter call per row), MonetDB's batch model through the PYTHON
// runtime (one interpreter call, whole column boxed into list values), and
// the native GO runtime (one call, the column's vector handed to typed Go
// code with zero boxing). The GO runtime is expected to beat batch-Python
// by a wide margin — that gap is the point of the pluggable runtime seam.
func BenchmarkProcessingModel(b *testing.B) {
	const rows = 100_000
	for _, tc := range []struct {
		name string
		mode monetlite.Mode
		sql  string
	}{
		{"tuple-at-a-time", monetlite.ModeTupleAtATime, `SELECT square(i) FROM numbers`},
		{"batch-python", monetlite.ModeOperatorAtATime, `SELECT square_vec(i) FROM numbers`},
		{"native-go", monetlite.ModeOperatorAtATime, `SELECT square_go(i) FROM numbers`},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fx, err := bench.StartServer(
				`CREATE TABLE numbers (i INTEGER)`,
				bench.NumbersInsert("numbers", rows),
				bench.SquareUDF, bench.SquareVectorUDF,
			)
			if err != nil {
				b.Fatal(err)
			}
			defer fx.Close()
			if err := fx.DB.RegisterGoUDFElementwise("square_go", bench.SquareGo); err != nil {
				b.Fatal(err)
			}
			fx.DB.Mode = tc.mode
			conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Exec(tc.sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- vectorized execution core: filtered aggregate over 1M rows ----

// buildFilterAggregateDB bulk-loads a 1M-row table (int key, float
// measure) straight into the catalog — the fixture for the vectorized
// core's flagship benchmark.
func buildFilterAggregateDB(b *testing.B, rows int) *monetlite.DB {
	b.Helper()
	iCol := &storage.Column{Name: "i", Typ: storage.TInt, Ints: make([]int64, rows)}
	fCol := &storage.Column{Name: "f", Typ: storage.TFloat, Flts: make([]float64, rows)}
	// deterministic LCG so every leg filters the same ~50% of rows
	state := uint64(42)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	for r := 0; r < rows; r++ {
		iCol.Ints[r] = int64(next() % 1000)
		fCol.Flts[r] = float64(next()%1_000_000) / 1_000_000
	}
	db := monetlite.NewDB()
	if err := db.RegisterTable(&storage.Table{Name: "big", Cols: []*storage.Column{iCol, fCol}}); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFilterAggregate is the vectorized core's headline number: a
// filtered aggregate over 1M rows through three execution strategies —
// the retained scalar reference (row-at-a-time closures, immediate
// gather), the vectorized single-threaded path (fused compare-select
// into a selection vector consumed by typed aggregation kernels), and
// the morsel-parallel path across all cores. The ISSUE acceptance bar is
// ≥5x for vectorized over scalar-reference.
func BenchmarkFilterAggregate(b *testing.B) {
	const rows = 1_000_000
	const query = `SELECT COUNT(*) AS n, SUM(i) AS si, AVG(f) AS af FROM big WHERE f > 0.5`
	for _, tc := range []struct {
		name      string
		scalarRef bool
		workers   int
		obsOn     bool
	}{
		{"scalar-reference", true, 1, false},
		{"vectorized", false, 1, false},
		{"vectorized-parallel", false, 0, false}, // 0 = GOMAXPROCS
		// The vectorized leg with the full observability envelope on —
		// metrics registry plus a pooled per-query trace, the serving-path
		// configuration. Tracing costs a fixed ~0.4µs per statement, so on
		// a millisecond-scale scan it vanishes; the CI overhead gate holds
		// this within 10% of the plain vectorized leg from the same run
		// (pure runner-noise headroom — the measured delta is ~0.01%).
		{"vectorized-obs", false, 1, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := buildFilterAggregateDB(b, rows)
			db.ScalarRef = tc.scalarRef
			db.Workers = tc.workers
			if tc.obsOn {
				db.EnableObs(monetlite.NewRegistry())
			}
			conn := monetlite.Connect(db, "monetdb", "monetdb")
			// sanity: all legs must agree on the aggregate
			r, err := conn.Exec(query)
			if err != nil {
				b.Fatal(err)
			}
			if n := r.Table.Cols[0].Ints[0]; n < rows/3 || n > 2*rows/3 {
				b.Fatalf("selectivity off: %d of %d rows", n, rows)
			}
			b.ResetTimer()
			if tc.obsOn {
				for i := 0; i < b.N; i++ {
					tr := monetlite.AcquireTrace(query, "monetdb")
					_, err := conn.ExecTraced(tr, query)
					monetlite.ReleaseTrace(tr)
					if err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			for i := 0; i < b.N; i++ {
				if _, err := conn.Exec(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterProject measures the projection side of selection
// vectors: WHERE + column materialization + LIMIT, where the historical
// path paid an append-grown index, a full gather into an intermediate
// table, a projection clone, and an identity-index LIMIT copy.
func BenchmarkFilterProject(b *testing.B) {
	const rows = 1_000_000
	const query = `SELECT i, f FROM big WHERE i < 100 LIMIT 1000`
	for _, tc := range []struct {
		name      string
		scalarRef bool
	}{
		{"scalar-reference", true},
		{"vectorized", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := buildFilterAggregateDB(b, rows)
			db.ScalarRef = tc.scalarRef
			db.Workers = 1
			conn := monetlite.Connect(db, "monetdb", "monetdb")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Exec(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- prepared statements: parse/plan amortization ----

// BenchmarkPrepareExec measures the point of the Prepare/Bind/Exec API: a
// parameterized filter+UDF query executed thousands of times with distinct
// binds. The unprepared leg does what ad-hoc clients do — format the
// literals into the SQL text and Exec it, re-lexing/re-parsing every call
// (distinct text defeats the plan cache by construction, the
// million-distinct-binds workload). The prepared leg parses once and binds
// per execution. The CI gate requires prepared ≥2x unprepared in the same
// run. The plan-cache leg shows the third shape: identical unprepared text
// served out of the DB plan cache.
func BenchmarkPrepareExec(b *testing.B) {
	const rows = 32
	build := func(b *testing.B) *monetlite.Conn {
		b.Helper()
		iCol := &storage.Column{Name: "i", Typ: storage.TInt, Ints: make([]int64, rows)}
		fCol := &storage.Column{Name: "f", Typ: storage.TFloat, Flts: make([]float64, rows)}
		for r := 0; r < rows; r++ {
			iCol.Ints[r] = int64(r % 16)
			fCol.Flts[r] = float64(r) / rows
		}
		db := monetlite.NewDB()
		if err := db.RegisterTable(&storage.Table{Name: "params", Cols: []*storage.Column{iCol, fCol}}); err != nil {
			b.Fatal(err)
		}
		if err := db.RegisterGoUDFElementwise("square_go", bench.SquareGo); err != nil {
			b.Fatal(err)
		}
		return monetlite.Connect(db, "monetdb", "monetdb")
	}
	const paramSQL = `SELECT square_go(i) AS squared_value, f AS fraction FROM params ` +
		`WHERE i >= ? AND i < ? AND f <> ? AND i <> 31 AND i <> 30 AND i <> 29`
	const substSQL = `SELECT square_go(i) AS squared_value, f AS fraction FROM params ` +
		`WHERE i >= %d AND i < %d AND f <> %g AND i <> 31 AND i <> 30 AND i <> 29`

	b.Run("unprepared", func(b *testing.B) {
		conn := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := int64(i % 8)
			sql := fmt.Sprintf(substSQL, lo, lo+6, float64(i%97)+1.5)
			if _, err := conn.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		conn := build(b)
		stmt, err := conn.Prepare(paramSQL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := int64(i % 8)
			if _, err := stmt.Query(lo, lo+6, float64(i%97)+1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan-cache", func(b *testing.B) {
		conn := build(b)
		sql := fmt.Sprintf(substSQL, 2, 8, 1.5)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Exec(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrepareExecWire is the same comparison over the wire v2
// transport: MsgExecStmt (stmt id + typed binds) vs per-call MsgQuery with
// formatted literals, same connection, same result decoding.
func BenchmarkPrepareExecWire(b *testing.B) {
	fx, err := bench.StartServer(`CREATE TABLE params (i INTEGER, f DOUBLE)`)
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	boot := monetlite.Connect(fx.DB, "monetdb", "monetdb")
	for r := 0; r < 64; r++ {
		if _, err := boot.Exec(fmt.Sprintf(`INSERT INTO params VALUES (%d, %g)`, r%16, float64(r)/64)); err != nil {
			b.Fatal(err)
		}
	}
	if err := fx.DB.RegisterGoUDFElementwise("square_go", bench.SquareGo); err != nil {
		b.Fatal(err)
	}
	const paramSQL = `SELECT square_go(i) AS sq FROM params WHERE i >= ? AND i < ? AND f <> ?`
	const substSQL = `SELECT square_go(i) AS sq FROM params WHERE i >= %d AND i < %d AND f <> %g`

	b.Run("unprepared", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := i % 8
			sql := fmt.Sprintf(substSQL, lo, lo+6, float64(i%97)+1.5)
			if _, _, err := cli.Query(ctx, sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		stmt, err := cli.Prepare(ctx, paramSQL)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := int64(i % 8)
			if _, _, err := stmt.Query(ctx, lo, lo+6, float64(i%97)+1.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E6: nested UDFs ----

func nestedFixture(b *testing.B) *bench.Fixture {
	b.Helper()
	setup := []string{
		`CREATE TABLE trainingset (data DOUBLE, labels INTEGER)`,
		`CREATE TABLE testingset (data DOUBLE, labels INTEGER)`,
	}
	setup = append(setup, bench.MLInserts(30, 30)...)
	setup = append(setup, bench.TrainRnforest, bench.FindBestClassifier)
	fx, err := bench.StartServer(setup...)
	if err != nil {
		b.Fatal(err)
	}
	return fx
}

func BenchmarkNestedUDFServer(b *testing.B) {
	fx := nestedFixture(b)
	defer fx.Close()
	conn := monetlite.Connect(fx.DB, "monetdb", "monetdb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Exec(`SELECT n_estimators FROM find_best_classifier(3)`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestedUDFLocal(b *testing.B) {
	fx := nestedFixture(b)
	defer fx.Close()
	settings := devudf.DefaultSettings()
	settings.Connection = fx.Params
	settings.DebugQuery = `SELECT * FROM find_best_classifier(3)`
	c, err := devudf.Open(ctx, settings, devudf.WithFS(core.NewMemFS(nil)))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ImportUDFs(ctx, "find_best_classifier"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.ExtractInputs(ctx, "find_best_classifier"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunLocal(ctx, "find_best_classifier"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: in-DB vs client pull ----

func BenchmarkInDBVsClient(b *testing.B) {
	const rows = 100_000
	fx, done := startNumbers(b, rows)
	defer done()
	b.Run("in-DB", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := cli.Query(ctx, `SELECT mean_deviation(i) FROM numbers`); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cli.BytesRead)/float64(b.N), "wireB/op")
	})
	b.Run("client-pull", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		analysis := clientAnalysis(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, tbl, err := cli.Query(ctx, `SELECT i FROM numbers`)
			if err != nil {
				b.Fatal(err)
			}
			if err := analysis(tbl.Cols[0].Ints); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cli.BytesRead)/float64(b.N), "wireB/op")
	})
}

// clientAnalysis builds the client-side Python analysis once (interpreter
// and parse reused, matching a data scientist's long-lived session).
func clientAnalysis(b *testing.B) func([]int64) error {
	b.Helper()
	src := "def mean_deviation(column):\n"
	for _, ln := range strings.Split(bench.MeanDeviationFixedBody, "\n") {
		src += "    " + ln + "\n"
	}
	mod, err := script.Parse("client", src)
	if err != nil {
		b.Fatal(err)
	}
	in := script.NewInterp()
	env, err := in.Run(mod)
	if err != nil {
		b.Fatal(err)
	}
	fn, _ := env.Get("mean_deviation")
	return func(col []int64) error {
		items := make([]script.Value, len(col))
		for i, v := range col {
			items[i] = script.IntVal(v)
		}
		_, err := in.Call(fn, []script.Value{script.NewList(items...)})
		return err
	}
}

// ---- v2 transport: streaming vs buffered result transfer ----

// BenchmarkWireTransfer pits the v2 chunked streaming path against the v1
// one-shot buffered path for the same result set, plus a pooled-connection
// variant — the transport side of the §2.2 transfer-cost argument.
func BenchmarkWireTransfer(b *testing.B) {
	const rows = 200_000
	fx, err := bench.StartServer(
		`CREATE TABLE numbers (i INTEGER)`,
		bench.NumbersInsert("numbers", rows),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer fx.Close()
	// stream aggressively so the benchmark exercises the chunked path
	fx.Server.StreamThreshold = 64 << 10

	b.Run("buffered-v1", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params, monetlite.WithProtoVersion(monetlite.ProtoV1))
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, tbl, err := cli.Query(ctx, `SELECT i FROM numbers`)
			if err != nil || tbl.NumRows() != rows {
				b.Fatalf("%v %v", tbl, err)
			}
		}
	})
	b.Run("buffered-v2", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, tbl, err := cli.Query(ctx, `SELECT i FROM numbers`)
			if err != nil || tbl.NumRows() != rows {
				b.Fatalf("%v %v", tbl, err)
			}
		}
	})
	b.Run("streaming-v2", func(b *testing.B) {
		cli, err := monetlite.DialContext(ctx, fx.Params)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rs, err := cli.QueryStream(ctx, `SELECT i FROM numbers`)
			if err != nil {
				b.Fatal(err)
			}
			var sum int64
			got := 0
			for rs.Next() {
				col := rs.Batch().Cols[0]
				for _, v := range col.Ints {
					sum += v
				}
				got += col.Len()
			}
			if err := rs.Err(); err != nil || got != rows {
				b.Fatalf("%d %v", got, err)
			}
			_ = sum
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := monetlite.NewPool(fx.Params, 4)
		defer pool.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				_, tbl, err := pool.Query(ctx, `SELECT i FROM numbers`)
				if err != nil || tbl.NumRows() != rows {
					b.Fatalf("%v %v", tbl, err)
				}
			}
		})
	})
}

// ---- substrate microbenchmarks ----

func BenchmarkPyLiteInterpreter(b *testing.B) {
	mod, err := script.Parse("bench", `
total = 0
for i in range(0, 1000):
    total += i * i
`)
	if err != nil {
		b.Fatal(err)
	}
	in := script.NewInterp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run(mod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPickleRoundTrip(b *testing.B) {
	items := make([]script.Value, 10_000)
	for i := range items {
		items[i] = script.IntVal(int64(i))
	}
	v := script.NewList(items...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := script.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := script.Unmarshal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParse(b *testing.B) {
	sql := `SELECT region, COUNT(*) AS n, SUM(amount) / COUNT(*) AS mean
FROM sales WHERE amount > 10 AND region <> 'x' GROUP BY region ORDER BY n DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransferPack(b *testing.B) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	for _, o := range []transfer.Options{
		{},
		{Compress: true},
		{Encrypt: true, Seed: 3},
		{Compress: true, Encrypt: true, Seed: 3},
	} {
		b.Run(fmt.Sprintf("compress=%v/encrypt=%v", o.Compress, o.Encrypt), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				packed, err := transfer.Pack(payload, "pw", o)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := transfer.Unpack(packed, "pw"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- durability: WAL append overhead on the INSERT path ----

// BenchmarkWALInsert compares a plain in-memory INSERT with the same
// INSERT committed through the write-ahead log (group-commit mode, the
// monetlited -data default). The acceptance bar for durable storage is
// staying under 2x the in-memory cost per statement.
func BenchmarkWALInsert(b *testing.B) {
	const insert = `INSERT INTO bench_wal VALUES (1, 'x'), (2, 'y'), (3, 'z')`
	run := func(b *testing.B, durable, obsOn bool) {
		db := monetlite.NewDB()
		db.FS = core.NewMemFS(nil)
		var reg *monetlite.Registry
		if obsOn {
			reg = monetlite.NewRegistry()
			db.EnableObs(reg)
		}
		if durable {
			// Auto-checkpoints off: this measures the per-statement append
			// overhead, not snapshot cadence (checkpoint cost is bounded and
			// amortized over SnapshotBytes of log in production).
			m, err := wal.Open(b.TempDir(), db, wal.Options{SnapshotBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			if obsOn {
				m.EnableObs(reg)
			}
		}
		conn := monetlite.Connect(db, "monetdb", "monetdb")
		if _, err := conn.Exec(`CREATE TABLE bench_wal (i INTEGER, s STRING)`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if obsOn {
			for i := 0; i < b.N; i++ {
				tr := monetlite.AcquireTrace(insert, "monetdb")
				_, err := conn.ExecTraced(tr, insert)
				monetlite.ReleaseTrace(tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			return
		}
		for i := 0; i < b.N; i++ {
			if _, err := conn.Exec(insert); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, false, false) })
	b.Run("wal", func(b *testing.B) { run(b, true, false) })
	// The durable leg with metrics and per-query tracing on (counters,
	// fsync histogram, exec + WAL spans): the envelope costs a fixed
	// ~0.4µs per statement — five monotonic clock reads (~65ns each
	// under a virtualized clock) plus a pooled trace, zero allocations —
	// which on this deliberately tiny 2-3µs INSERT reads as ~20%. The
	// CI gate holds the ratio under 1.35x to catch real regressions (one
	// stray per-query allocation reads as +25% on top); the headline <5%
	// instrumentation gate is the plain legs against the committed
	// BENCH_pr.json baselines, which run with obs dormant exactly as a
	// monetlited without -metrics-addr does.
	b.Run("wal-obs", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkSustainedLoad measures per-statement cost under sustained
// concurrent load through the full resilience stack: a server with
// admission control armed (connection cap, bounded per-connection
// queues, a generous query timeout — every statement runs with an
// interrupt installed), driven by a retrying pool from GOMAXPROCS
// worker goroutines. ns/op is end-to-end wire latency per statement
// with all cancellation checkpoints live; the CI gate watches it
// against the committed baseline so the resilience layer's per-query
// bookkeeping stays in the noise.
func BenchmarkSustainedLoad(b *testing.B) {
	const rows = 1024
	iCol := &storage.Column{Name: "i", Typ: storage.TInt, Ints: make([]int64, rows)}
	for r := 0; r < rows; r++ {
		iCol.Ints[r] = int64(r % 128)
	}
	db := monetlite.NewDB()
	db.FS = core.NewMemFS(nil)
	if err := db.RegisterTable(&storage.Table{Name: "load", Cols: []*storage.Column{iCol}}); err != nil {
		b.Fatal(err)
	}
	srv := monetlite.NewServer("demo", "monetdb", "monetdb", db)
	srv.MaxConns = 64
	srv.MaxQueueDepth = 128
	srv.QueryTimeout = 30 * time.Second
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	i := strings.LastIndexByte(addr, ':')
	port := 0
	for _, ch := range addr[i+1:] {
		port = port*10 + int(ch-'0')
	}
	params := monetlite.ConnParams{
		Host: addr[:i], Port: port, Database: "demo",
		User: "monetdb", Password: "monetdb",
	}
	b.Run("pooled", func(b *testing.B) {
		pool := monetlite.NewPool(params, 8)
		defer pool.Close()
		pool.EnableRetry(monetlite.RetryPolicy{MaxAttempts: 3})
		// Warm the pool so dials happen outside the timed region.
		if _, _, err := pool.Query(ctx, `SELECT COUNT(*) AS n FROM load`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := pool.Query(ctx, `SELECT COUNT(*) AS n, SUM(i) AS s FROM load WHERE i < 64`); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
